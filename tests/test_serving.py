"""Tests for the serving layer: EmbeddingStore + SimilarityIndex.

The contract under test is *exactness*: the chunked, partially-selected
index must return the same neighbours and ranks as a brute-force float64
distance matrix with a stable full argsort, on data without contrived ties.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.eval.similarity import (
    euclidean_distance_matrix,
    ranks_of_ground_truth,
    top_k_indices,
)
from repro.serving.index import SimilarityIndex
from repro.serving.store import FORMAT_VERSION, EmbeddingStore


def brute_force_distances(queries: np.ndarray, database: np.ndarray) -> np.ndarray:
    queries = np.asarray(queries, dtype=np.float64)
    database = np.asarray(database, dtype=np.float64)
    q_norm = (queries**2).sum(axis=1)[:, None]
    d_norm = (database**2).sum(axis=1)[None, :]
    return np.sqrt(np.maximum(q_norm + d_norm - 2.0 * queries @ database.T, 0.0))


def brute_force_topk(queries: np.ndarray, database: np.ndarray, k: int) -> np.ndarray:
    return np.argsort(brute_force_distances(queries, database), axis=1, kind="stable")[:, :k]


@dataclass
class FakeTrajectory:
    """Minimal stand-in: only ``__len__`` and ``trajectory_id`` are used."""

    length: int
    trajectory_id: int

    def __len__(self) -> int:
        return self.length


def linear_encode(batch: list[FakeTrajectory]) -> np.ndarray:
    """Deterministic per-trajectory embedding (independent of batching)."""
    return np.array(
        [[t.length, t.trajectory_id % 7, t.trajectory_id % 3] for t in batch],
        dtype=np.float32,
    )


class TestSimilarityIndex:
    @pytest.mark.parametrize("k", [1, 5, 17])
    @pytest.mark.parametrize("query_chunk,database_chunk", [(256, 4096), (13, 61)])
    def test_topk_matches_bruteforce(self, rng, k, query_chunk, database_chunk):
        database = rng.standard_normal((300, 16)).astype(np.float32)
        queries = rng.standard_normal((40, 16)).astype(np.float32)
        index = SimilarityIndex(
            database, query_chunk_size=query_chunk, database_chunk_size=database_chunk
        )
        result = index.topk(queries, k)
        expected = brute_force_topk(queries, database, k)
        np.testing.assert_array_equal(result.indices, expected)
        assert result.distances.dtype == np.float32
        assert (np.diff(result.distances, axis=1) >= 0).all()

    def test_topk_exact_on_1k_queries_5k_database(self, rng):
        """The acceptance-criterion case: seeded 1k x 5k, identical neighbours."""
        database = rng.standard_normal((5000, 32)).astype(np.float32)
        queries = rng.standard_normal((1000, 32)).astype(np.float32)
        result = SimilarityIndex(database, database_chunk_size=1024).topk(queries, 5)
        np.testing.assert_array_equal(result.indices, brute_force_topk(queries, database, 5))

    def test_topk_clamps_k_and_handles_empty_queries(self, rng):
        database = rng.standard_normal((6, 4)).astype(np.float32)
        index = SimilarityIndex(database)
        assert index.topk(rng.standard_normal((3, 4)), 100).indices.shape == (3, 6)
        assert index.topk(np.zeros((0, 4)), 2).indices.shape == (0, 2)
        with pytest.raises(ValueError):
            index.topk(rng.standard_normal((3, 4)), 0)
        with pytest.raises(ValueError):
            index.topk(rng.standard_normal((3, 4)), -1)
        with pytest.raises(ValueError):
            index.topk(rng.standard_normal((3, 5)), 2)  # dimension mismatch

    def test_topk_on_empty_database(self, rng):
        index = SimilarityIndex(np.empty((0, 4), dtype=np.float32))
        assert len(index) == 0
        result = index.topk(rng.standard_normal((3, 4)), 5)
        assert result.indices.shape == (3, 0)
        assert result.distances.shape == (3, 0)
        with pytest.raises(ValueError):
            index.topk(rng.standard_normal((3, 4)), 0)  # k < 1 still rejected

    def test_topk_k_equals_database_size(self, rng):
        database = rng.standard_normal((12, 4)).astype(np.float32)
        queries = rng.standard_normal((5, 4)).astype(np.float32)
        result = SimilarityIndex(database).topk(queries, k=12)
        np.testing.assert_array_equal(result.indices, brute_force_topk(queries, database, 12))

    def test_topk_k_exceeds_database_size_clamps(self, rng):
        database = rng.standard_normal((7, 4)).astype(np.float32)
        queries = rng.standard_normal((4, 4)).astype(np.float32)
        result = SimilarityIndex(database).topk(queries, k=50)
        assert result.indices.shape == (4, 7)
        np.testing.assert_array_equal(result.indices, brute_force_topk(queries, database, 7))

    def test_tie_breaking_prefers_lower_index(self):
        database = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]], dtype=np.float32)
        queries = np.array([[1.0, 0.0]], dtype=np.float32)
        result = SimilarityIndex(database).topk(queries, 3)
        np.testing.assert_array_equal(result.indices, [[0, 2, 1]])

    def test_ranks_of_matches_stable_argsort(self, rng):
        database = rng.standard_normal((500, 8)).astype(np.float32)
        queries = rng.standard_normal((60, 8)).astype(np.float32)
        truth = rng.integers(0, 500, size=60)
        index = SimilarityIndex(database, query_chunk_size=7, database_chunk_size=93)
        ranks = index.ranks_of(queries, truth)
        order = np.argsort(brute_force_distances(queries, database), axis=1, kind="stable")
        expected = np.array(
            [int(np.where(order[i] == truth[i])[0][0]) + 1 for i in range(len(truth))]
        )
        np.testing.assert_array_equal(ranks, expected)

    def test_ranks_of_validates_input(self, rng):
        index = SimilarityIndex(rng.standard_normal((10, 4)))
        with pytest.raises(ValueError):
            index.ranks_of(rng.standard_normal((3, 4)), np.array([0, 1]))
        with pytest.raises(ValueError):
            index.ranks_of(rng.standard_normal((2, 4)), np.array([0, 10]))


class TestEmbeddingStore:
    def test_build_preserves_row_order_and_ids(self, rng):
        trajectories = [
            FakeTrajectory(length=int(rng.integers(3, 60)), trajectory_id=100 + i)
            for i in range(25)
        ]
        store = EmbeddingStore.build(linear_encode, trajectories, batch_size=4)
        np.testing.assert_array_equal(store.vectors, linear_encode(trajectories))
        np.testing.assert_array_equal(store.ids, [t.trajectory_id for t in trajectories])

    def test_build_batches_by_length(self, rng):
        trajectories = [
            FakeTrajectory(length=int(rng.integers(3, 200)), trajectory_id=i) for i in range(40)
        ]
        seen_batches: list[list[int]] = []

        def recording_encode(batch):
            seen_batches.append([len(t) for t in batch])
            return linear_encode(batch)

        EmbeddingStore.build(recording_encode, trajectories, batch_size=8)
        flattened = [length for batch in seen_batches for length in batch]
        assert flattened == sorted(flattened)  # batches walk the length order

    def test_build_rejects_empty_and_bad_batches(self):
        with pytest.raises(ValueError):
            EmbeddingStore.build(linear_encode, [])
        with pytest.raises(ValueError):
            EmbeddingStore.build(
                lambda batch: np.zeros((1, 3), dtype=np.float32),
                [FakeTrajectory(3, 0), FakeTrajectory(4, 1)],
            )

    def test_save_load_round_trip(self, rng, tmp_path):
        store = EmbeddingStore(
            rng.standard_normal((12, 5)).astype(np.float32),
            ids=np.arange(100, 112),
            metadata={"model": "START", "epoch": 5},
        )
        path = store.save(tmp_path / "embeddings.npz")
        loaded = EmbeddingStore.load(path)
        np.testing.assert_array_equal(loaded.vectors, store.vectors)
        np.testing.assert_array_equal(loaded.ids, store.ids)
        assert loaded.metadata == {"model": "START", "epoch": 5}
        assert loaded.vectors.dtype == np.float32

    def test_load_refuses_future_format(self, rng, tmp_path):
        store = EmbeddingStore(rng.standard_normal((3, 2)).astype(np.float32))
        path = store.save(tmp_path / "future.npz")
        import json

        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        meta = json.loads(bytes(arrays["__embedding_store_meta__"].tobytes()).decode())
        meta["format_version"] = FORMAT_VERSION + 1
        arrays["__embedding_store_meta__"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="format"):
            EmbeddingStore.load(path)

    def test_empty_store_round_trip(self, tmp_path):
        store = EmbeddingStore(np.empty((0, 5), dtype=np.float32), metadata={"note": "empty"})
        assert len(store) == 0 and store.dim == 5
        loaded = EmbeddingStore.load(store.save(tmp_path / "empty.npz"))
        assert len(loaded) == 0
        assert loaded.dim == 5
        assert loaded.metadata == {"note": "empty"}
        assert loaded.ids.shape == (0,)

    def test_load_rejects_mismatched_metadata(self, rng, tmp_path):
        """A version tag whose count/dim disagree with the arrays is refused."""
        store = EmbeddingStore(rng.standard_normal((4, 3)).astype(np.float32))
        path = store.save(tmp_path / "tampered.npz")
        import json

        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        meta = json.loads(bytes(arrays["__embedding_store_meta__"].tobytes()).decode())
        meta["count"] = 99  # tag no longer matches the vectors array
        arrays["__embedding_store_meta__"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="metadata"):
            EmbeddingStore.load(path)

    def test_store_to_index_end_to_end(self, rng):
        vectors = rng.standard_normal((80, 6)).astype(np.float32)
        store = EmbeddingStore(vectors)
        result = store.index(database_chunk_size=16).topk(vectors[:10], 3)
        # Each vector's own row is its nearest neighbour at distance ~0.
        np.testing.assert_array_equal(result.indices[:, 0], np.arange(10))


class TestEvalHelpers:
    def test_euclidean_distance_matrix_matches_float64(self, rng):
        queries = rng.standard_normal((9, 12))
        database = rng.standard_normal((33, 12))
        chunked = euclidean_distance_matrix(queries, database, chunk_size=10)
        assert chunked.dtype == np.float32
        np.testing.assert_allclose(chunked, brute_force_distances(queries, database), atol=1e-4)

    def test_ranks_of_ground_truth_threshold(self, rng):
        distances = rng.standard_normal((20, 50)) ** 2
        ground_truth = {i: int(rng.integers(0, 50)) for i in range(20)}
        exact = ranks_of_ground_truth(distances, ground_truth)
        capped = ranks_of_ground_truth(distances, ground_truth, threshold=5)
        np.testing.assert_array_equal(capped, np.where(exact <= 5, exact, 6))
        with pytest.raises(ValueError):
            ranks_of_ground_truth(distances, ground_truth, threshold=0)

    def test_top_k_indices_matches_bruteforce(self, rng):
        distances = rng.standard_normal((15, 40)) ** 2
        expected = np.argsort(distances, axis=1, kind="stable")[:, :4]
        np.testing.assert_array_equal(top_k_indices(distances, 4), expected)
        # k >= row length degenerates to a full stable sort.
        np.testing.assert_array_equal(
            top_k_indices(distances, 40), np.argsort(distances, axis=1, kind="stable")
        )
