"""Tests for the serving runtime — deterministic concurrency, no sleeps.

Built entirely on ``tests/serving_runtime_kit.py``: virtual time for every
timer, synchronous :meth:`ServingRuntime.pump` stepping for ingest, armed
one-shot faults for crashes.  The acceptance pins:

* batched concurrent responses are **bitwise identical** to sequential
  :meth:`Engine.query` (per backend, both query flavours);
* every batch executes against exactly one published replica generation;
* a kill + restart from the last checkpoint is bit-identical to the
  uninterrupted run (hypothesis, over kill points — with an encoder whose
  output depends on batch composition, so replay grouping is actually
  proven);
* shutdown drains accepted work; faults stay contained to their blast
  radius (one request, one worker — never the runtime).
"""

from __future__ import annotations

import importlib.util
import json
import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Engine, QueryRequest
from repro.obs import NULL_REGISTRY
from repro.server import (
    BatchAggregator,
    Checkpointer,
    ServerClosed,
    ServerConfig,
    ServingRuntime,
)
from repro.streaming.reader import TrajectoryStreamReader
from repro.streaming.service import _LRUCache
from serving_runtime_kit import (
    FaultInjector,
    FlakyEncoder,
    HookRecorder,
    VirtualClock,
    assert_responses_identical,
    batch_sensitive_encode,
    engine_fingerprint,
    id_encode,
    make_engine,
    make_runtime,
    make_trajectory,
    probe_queries,
    seed_engine,
    sequential_reference,
    write_stream,
)

# Server tests involve real threads: cap each test well below the suite-wide
# CI timeout so a deadlock fails fast with a stack dump (satellite of PR 6).
if importlib.util.find_spec("pytest_timeout") is not None:
    pytestmark = [pytest.mark.timeout(120, method="thread")]


# ---------------------------------------------------------------------- #
# Virtual clock
# ---------------------------------------------------------------------- #
class TestVirtualClock:
    def test_advance_fires_deadline_exactly(self):
        clock = VirtualClock()
        event = clock.make_event()
        observed = []

        def waiter():
            observed.append(clock.wait(event, timeout=1.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        clock.wait_for_waiters(1)
        clock.advance(0.999)
        assert thread.is_alive()  # deterministic: now < deadline, still parked
        clock.advance(0.001)
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert observed == [False]  # timed out, event never set

    def test_set_wakes_waiter_without_time_moving(self):
        clock = VirtualClock()
        event = clock.make_event()
        results = []
        thread = threading.Thread(target=lambda: results.append(clock.wait(event)))
        thread.start()
        clock.wait_for_waiters(1)
        event.set()
        thread.join(timeout=5)
        assert results == [True]
        assert clock.monotonic() == 0.0

    def test_foreign_event_is_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError, match="make_event"):
            clock.wait(VirtualClock().make_event(), timeout=0.1)

    def test_wait_for_waiters_times_out(self):
        with pytest.raises(TimeoutError):
            VirtualClock().wait_for_waiters(1, timeout=0.05)


# ---------------------------------------------------------------------- #
# Batch aggregator
# ---------------------------------------------------------------------- #
class TestBatchAggregator:
    def test_size_trigger_releases_inline(self):
        batches = []
        aggregator = BatchAggregator(batches.append, max_batch=3, linger=60.0)
        futures = [aggregator.submit(QueryRequest(queries=probe_queries(1))) for _ in range(3)]
        assert len(batches) == 1 and len(batches[0]) == 3
        assert [entry.future for entry in batches[0]] == futures
        assert aggregator.pending == 0

    def test_linger_trigger_under_virtual_time(self):
        clock = VirtualClock()
        batches = []
        delivered = threading.Event()

        def sink(batch):
            batches.append(batch)
            delivered.set()

        aggregator = BatchAggregator(sink, max_batch=10, linger=1.0, clock=clock)
        aggregator.start()
        aggregator.submit(QueryRequest(queries=probe_queries(1)))  # deadline t=1.0
        clock.advance(0.5)
        aggregator.submit(QueryRequest(queries=probe_queries(1)))
        clock.advance(0.5)  # exactly the first request's deadline
        assert delivered.wait(timeout=5)
        # One batch holding BOTH requests: had the first flushed early, the
        # second would have landed in a batch of its own.
        assert [len(batch) for batch in batches] == [2]
        aggregator.close()

    def test_close_flushes_pending_and_rejects_new(self):
        batches = []
        aggregator = BatchAggregator(batches.append, max_batch=10, linger=60.0)
        aggregator.start()
        future = aggregator.submit(QueryRequest(queries=probe_queries(1)))
        aggregator.close()
        assert [len(batch) for batch in batches] == [1]
        assert batches[0][0].future is future
        with pytest.raises(ServerClosed):
            aggregator.submit(QueryRequest(queries=probe_queries(1)))

    def test_stats_mean_occupancy(self):
        aggregator = BatchAggregator(lambda batch: None, max_batch=2, linger=60.0)
        for _ in range(4):
            aggregator.submit(QueryRequest(queries=probe_queries(1)))
        assert aggregator.stats == {"batches": 2, "requests": 4, "mean_occupancy": 2.0}


# ---------------------------------------------------------------------- #
# Engine.query_many and Engine.replicate
# ---------------------------------------------------------------------- #
class TestQueryMany:
    @pytest.fixture()
    def engine(self):
        engine = make_engine()
        seed_engine(engine, 24)
        return engine

    def test_aligned_matches_sequential_bitwise(self, engine):
        requests = [QueryRequest(queries=probe_queries(2, seed=s), k=3) for s in range(5)]
        expected = sequential_reference(engine, requests)
        for actual, reference in zip(engine.query_many(requests), expected):
            assert_responses_identical(actual, reference)

    def test_fused_same_ids_close_distances(self, engine):
        requests = [QueryRequest(queries=probe_queries(2, seed=s), k=3) for s in range(5)]
        expected = sequential_reference(engine, requests)
        for actual, reference in zip(engine.query_many(requests, coalesce="fused"), expected):
            np.testing.assert_array_equal(actual.ids, reference.ids)
            np.testing.assert_allclose(actual.distances, reference.distances, rtol=1e-5)

    def test_fused_serves_and_fills_the_cache(self, engine):
        request = QueryRequest(queries=probe_queries(2), k=3)
        first = engine.query(request)
        assert engine.query_many([request], coalesce="fused")[0] is first  # cache hit
        fresh = QueryRequest(queries=probe_queries(2, seed=99), k=3)
        fused = engine.query_many([fresh], coalesce="fused")[0]
        assert engine.query(fresh) is fused  # fused miss populated the cache

    def test_unknown_coalesce_mode_raises(self, engine):
        with pytest.raises(ValueError, match="coalesce"):
            engine.query_many([], coalesce="sideways")

    def test_replicate_is_bit_stable_and_isolated(self, engine):
        replica = engine.replicate()
        request = QueryRequest(queries=probe_queries(3), k=4)
        assert_responses_identical(replica.query(request), engine.query(request))
        engine.ingest([make_trajectory(777)])  # later primary growth...
        assert len(replica) == len(engine) - 1  # ...never leaks into the replica


# ---------------------------------------------------------------------- #
# Batched-vs-sequential bit identity (the tentpole pin)
# ---------------------------------------------------------------------- #
class TestBitIdentity:
    @pytest.mark.parametrize("backend", ["bruteforce", "chunked", "sharded", "ivf", "ivfpq"])
    def test_batched_concurrent_equals_sequential(self, backend):
        engine = make_engine(backend=backend)
        seed_engine(engine, 30)
        requests = [QueryRequest(queries=probe_queries(2, seed=s), k=4) for s in range(8)]
        requests += [QueryRequest(queries=[make_trajectory(1000 + s)], k=3) for s in range(4)]
        with make_runtime(engine, max_batch=4, num_workers=2) as runtime:
            futures = [runtime.submit(request) for request in requests]
            responses = [future.result(timeout=30) for future in futures]
        # The primary never mutated: it IS the sequential ground truth.
        for actual, reference in zip(responses, sequential_reference(engine, requests)):
            assert_responses_identical(actual, reference)

    def test_threaded_callers_are_bit_identical(self):
        engine = make_engine()
        seed_engine(engine, 30)
        requests = [QueryRequest(queries=probe_queries(1, seed=s), k=5) for s in range(16)]
        with make_runtime(engine, max_batch=4, num_workers=3) as runtime:
            with ThreadPoolExecutor(max_workers=8) as pool:
                responses = list(pool.map(lambda r: runtime.query(r, timeout=30), requests))
        for actual, reference in zip(responses, sequential_reference(engine, requests)):
            assert_responses_identical(actual, reference)

    def test_fused_runtime_same_ids_close_distances(self):
        engine = make_engine()
        seed_engine(engine, 30)
        requests = [QueryRequest(queries=probe_queries(2, seed=s), k=4) for s in range(8)]
        with make_runtime(engine, coalesce="fused", max_batch=4) as runtime:
            futures = [runtime.submit(request) for request in requests]
            responses = [future.result(timeout=30) for future in futures]
        for actual, reference in zip(responses, sequential_reference(engine, requests)):
            np.testing.assert_array_equal(actual.ids, reference.ids)
            np.testing.assert_allclose(actual.distances, reference.distances, rtol=1e-5)


# ---------------------------------------------------------------------- #
# Generation consistency between replicas and the primary
# ---------------------------------------------------------------------- #
class TestGenerationConsistency:
    def test_batches_run_on_one_published_generation(self):
        hooks = HookRecorder()
        engine = make_engine()
        seed_engine(engine, 12)
        with make_runtime(engine, hooks=hooks, publish_every_groups=1) as runtime:
            assert runtime.query(QueryRequest(queries=probe_queries(1), k=2))
            runtime.ingest([make_trajectory(5000)])  # publishes generation 2
            target = id_encode([make_trajectory(5000)])
            response = runtime.query(QueryRequest(queries=target, k=1), timeout=30)
            assert response.trajectory_ids.tolist() == [[5000]]
        starts = hooks.of("batch_start")
        dones = hooks.of("batch_done")
        # A batch never straddles generations, and generations only advance.
        assert [s["generation"] for s in starts] == [d["generation"] for d in dones]
        generations = [s["generation"] for s in starts]
        assert generations == sorted(generations)
        assert generations[0] == 1 and generations[-1] == 2
        publishes = [p["generation"] for p in hooks.of("publish")]
        assert publishes[:2] == [1, 2]

    def test_stream_groups_publish_new_generations(self, tmp_path):
        hooks = HookRecorder()
        engine = make_engine()
        runtime = make_runtime(engine, hooks=hooks, ingest_group_size=4)
        stream = tmp_path / "arrivals.jsonl"
        write_stream(stream, range(10))
        runtime.attach_stream(stream)
        outcome = runtime.pump()  # synchronous stepping: no threads involved
        assert outcome["stream_records"] == 8  # two full groups of 4
        assert runtime.stats()["ingested_records"] == 8
        assert len(engine) == 8
        runtime.flush_ingest()  # the partial tail group of 2
        assert len(engine) == 10
        rows = [p["rows"] for p in hooks.of("publish")]
        assert rows[-1] == 10 and rows == sorted(rows)


# ---------------------------------------------------------------------- #
# Fault injection: worker kills, respawn, encode failures
# ---------------------------------------------------------------------- #
class TestWorkerFaults:
    def test_killed_worker_loses_no_request(self):
        faults = FaultInjector()
        faults.arm_kill(1)
        engine = make_engine()
        seed_engine(engine, 20)
        requests = [QueryRequest(queries=probe_queries(1, seed=s), k=3) for s in range(4)]
        with make_runtime(engine, hooks=faults, max_batch=4, num_workers=2) as runtime:
            futures = [runtime.submit(request) for request in requests]
            responses = [future.result(timeout=30) for future in futures]
            stats = runtime.stats()
        for actual, reference in zip(responses, sequential_reference(engine, requests)):
            assert_responses_identical(actual, reference)
        assert stats["worker_deaths"] == 1 and stats["respawns"] == 1
        assert {"killed"} <= {e["reason"] for e in faults.of("worker_exit")}

    def test_respawn_exhaustion_poisons_the_runtime(self):
        faults = FaultInjector()
        faults.arm_kill(1)
        engine = make_engine()
        seed_engine(engine, 12)
        runtime = make_runtime(
            engine, hooks=faults, max_batch=2, num_workers=1, max_worker_respawns=0
        )
        with runtime:
            futures = [
                runtime.submit(QueryRequest(queries=probe_queries(1, seed=s), k=2))
                for s in range(2)
            ]
            for future in futures:
                with pytest.raises(ServerClosed):
                    future.result(timeout=30)
            with pytest.raises(ServerClosed):
                runtime.submit(QueryRequest(queries=probe_queries(1), k=2))
        assert faults.of("worker_exit") == [{"worker_id": 0, "reason": "killed"}]

    def test_encode_failure_hits_only_its_own_request(self):
        encoder = FlakyEncoder(poison_ids={666})
        engine = make_engine(encoder)
        seed_engine(engine, 12)
        requests = [
            QueryRequest(queries=probe_queries(1), k=3),
            QueryRequest(queries=[make_trajectory(666)], k=3),
            QueryRequest(queries=[make_trajectory(1003)], k=3),
        ]
        with make_runtime(engine, max_batch=3, num_workers=1) as runtime:
            futures = [runtime.submit(request) for request in requests]
            with pytest.raises(RuntimeError, match="poisoned trajectory 666"):
                futures[1].result(timeout=30)
            good = [futures[0].result(timeout=30), futures[2].result(timeout=30)]
        reference = sequential_reference(engine, [requests[0], requests[2]])
        for actual, expected in zip(good, reference):
            assert_responses_identical(actual, expected)


# ---------------------------------------------------------------------- #
# Shutdown semantics
# ---------------------------------------------------------------------- #
class TestShutdown:
    def test_shutdown_drains_in_flight_requests(self):
        engine = make_engine()
        seed_engine(engine, 16)
        requests = [QueryRequest(queries=probe_queries(1, seed=s), k=3) for s in range(3)]
        runtime = make_runtime(engine, max_batch=8, linger=60.0)  # timer never fires
        runtime.start()
        futures = [runtime.submit(request) for request in requests]
        assert runtime.stats()["pending"] == 3  # parked in the aggregator
        runtime.shutdown()  # close flushes the buffer; drain waits for answers
        responses = [future.result(timeout=0) for future in futures]
        for actual, reference in zip(responses, sequential_reference(engine, requests)):
            assert_responses_identical(actual, reference)

    def test_runtime_rejects_work_unless_started(self):
        runtime = make_runtime()
        with pytest.raises(ServerClosed):
            runtime.submit(QueryRequest(queries=probe_queries(1)))
        runtime.start()
        runtime.shutdown()
        with pytest.raises(ServerClosed):
            runtime.submit(QueryRequest(queries=probe_queries(1)))
        runtime.shutdown()  # idempotent

    def test_final_flush_and_checkpoint_on_shutdown(self, tmp_path):
        engine = make_engine()
        runtime = make_runtime(
            engine, ingest_group_size=4, checkpoint_dir=tmp_path / "ckpt"
        )
        stream = tmp_path / "arrivals.jsonl"
        write_stream(stream, range(6))
        with runtime:
            runtime.attach_stream(stream)
        # Drained shutdown ingested the full group AND the partial tail...
        assert len(engine) == 6
        manifest = Checkpointer.load_manifest(tmp_path / "ckpt")
        # ...and the final checkpoint covers all six records.
        assert manifest["ingested_records"] == 6
        assert manifest["stream"]["records_read"] == 6


# ---------------------------------------------------------------------- #
# The query-cache under concurrency (the PR's latent-bug satellite)
# ---------------------------------------------------------------------- #
class TestCacheThreadSafety:
    def test_lru_cache_survives_a_hammer(self):
        cache = _LRUCache(capacity=16)
        errors = []
        gets_per_thread = 2000

        def hammer(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                for _ in range(gets_per_thread):
                    key = int(rng.integers(0, 48))
                    if cache.get(key) is None:
                        cache.put(key, object())
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(seed,)) for seed in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(cache) <= 16
        # Counter increments are lock-protected: none may be lost to a race.
        assert cache.hits + cache.misses == 8 * gets_per_thread

    def test_engine_query_cache_is_thread_safe(self):
        engine = make_engine()
        seed_engine(engine, 24)
        pool_requests = [QueryRequest(queries=probe_queries(1, seed=s), k=3) for s in range(6)]
        reference = sequential_reference(engine, pool_requests)

        def worker(seed: int):
            rng = np.random.default_rng(seed)
            for _ in range(50):
                pick = int(rng.integers(0, len(pool_requests)))
                assert_responses_identical(engine.query(pool_requests[pick]), reference[pick])

        with ThreadPoolExecutor(max_workers=8) as pool:
            for result in [pool.submit(worker, seed) for seed in range(8)]:
                result.result(timeout=60)


# ---------------------------------------------------------------------- #
# Checkpointing and crash-restart equivalence
# ---------------------------------------------------------------------- #
class TestCheckpointer:
    def test_commit_is_atomic_and_pruned(self, tmp_path):
        engine = make_engine()
        seed_engine(engine, 8)
        checkpointer = Checkpointer(tmp_path, keep=2)
        for generation in (1, 2, 3):
            info = checkpointer.save(engine, generation=generation)
            assert info.generation == generation
        assert not (tmp_path / "CHECKPOINT.json.tmp").exists()
        kept = sorted(p.name for p in (tmp_path / "snapshots").iterdir())
        assert kept == ["gen_000002", "gen_000003"]
        manifest = Checkpointer.load_manifest(tmp_path)
        assert manifest["generation"] == 3 and manifest["rows"] == 8

    def test_missing_and_future_checkpoints_are_refused(self, tmp_path):
        assert Checkpointer.load_manifest(tmp_path) is None
        with pytest.raises(ValueError, match="no CHECKPOINT.json"):
            Checkpointer.restore_engine(tmp_path, id_encode)
        (tmp_path / "CHECKPOINT.json").write_text(json.dumps({"format_version": 99}))
        with pytest.raises(ValueError, match="format v99"):
            Checkpointer.load_manifest(tmp_path)

    def test_reader_state_seek_round_trip(self, tmp_path):
        stream = tmp_path / "arrivals.jsonl"
        write_stream(stream, range(6))
        reader = TrajectoryStreamReader(stream)
        head = reader.poll(max_records=3)
        state = reader.state
        resumed = TrajectoryStreamReader(stream)
        resumed.seek(**state)
        tail = resumed.poll()
        assert [t.trajectory_id for t in head + tail] == list(range(6))
        assert resumed.records_read == 6
        with pytest.raises(ValueError):
            resumed.seek(-1)


def _crash_restart_fingerprints(root: Path, ids, group_size, publish_every, kill_point):
    """Fingerprints of (uninterrupted, killed-and-restored) runs over ``ids``."""
    config = ServerConfig(
        ingest_group_size=group_size,
        publish_every_groups=publish_every,
        num_workers=1,
    )
    # Reference: every record, one run, no crash.  Grouping depends only on
    # record order, so feeding the stream up-front is equivalent.
    reference_stream = root / "reference.jsonl"
    write_stream(reference_stream, ids)
    reference = ServingRuntime(
        make_engine(batch_sensitive_encode),
        config.variant(checkpoint_dir=root / "reference_ckpt"),
        replica_dir=root / "reference_replicas",
    )
    reference.attach_stream(reference_stream)
    reference.pump()
    reference.flush_ingest()
    expected = engine_fingerprint(reference.primary)

    # Crashed run: records arrive one by one; the process dies (no shutdown,
    # no flush) just before record ``kill_point`` arrives.
    stream = root / "crash.jsonl"
    checkpoint_dir = root / "crash_ckpt"
    victim = ServingRuntime(
        make_engine(batch_sensitive_encode),
        config.variant(checkpoint_dir=checkpoint_dir),
        replica_dir=root / "crash_replicas",
    )
    victim.attach_stream(stream)
    victim.flush_ingest()  # the initial checkpoint a server commits on boot
    for trajectory_id in ids[:kill_point]:
        write_stream(stream, [trajectory_id])
        victim.pump()
    del victim  # the crash: nothing flushed, nothing drained

    restored = ServingRuntime.restore(
        checkpoint_dir,
        batch_sensitive_encode,
        config=config,
        stream_path=stream,
    )
    for trajectory_id in ids[kill_point:]:
        write_stream(stream, [trajectory_id])
        restored.pump()
    restored.flush_ingest()
    actual = engine_fingerprint(restored.primary)
    reference.shutdown()
    restored.shutdown()
    return expected, actual


class TestCrashRestartEquivalence:
    def test_kill_mid_stream_restores_bit_identically(self, tmp_path):
        expected, actual = _crash_restart_fingerprints(
            tmp_path, list(range(10)), group_size=3, publish_every=1, kill_point=5
        )
        assert actual == expected

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_any_kill_point_restores_bit_identically(self, data):
        count = data.draw(st.integers(min_value=3, max_value=12), label="records")
        group_size = data.draw(st.integers(min_value=1, max_value=4), label="group_size")
        publish_every = data.draw(st.integers(min_value=1, max_value=3), label="publish_every")
        kill_point = data.draw(st.integers(min_value=0, max_value=count), label="kill_point")
        with tempfile.TemporaryDirectory(prefix="repro-server-crash-") as root:
            expected, actual = _crash_restart_fingerprints(
                Path(root), list(range(count)), group_size, publish_every, kill_point
            )
        assert actual == expected

    def test_restored_runtime_serves_queries(self, tmp_path):
        engine = make_engine()
        seed_engine(engine, 12)
        runtime = make_runtime(engine, checkpoint_dir=tmp_path / "ckpt")
        with runtime:
            runtime.flush_ingest()
        request = QueryRequest(queries=probe_queries(2), k=3)
        expected = engine.query(request)
        restored = ServingRuntime.restore(
            tmp_path / "ckpt", id_encode, config=runtime.config
        )
        with restored:
            assert_responses_identical(restored.query(request, timeout=30), expected)


class TestRuntimeMetrics:
    """The PR 9 observability contract: the runtime reports what it serves."""

    def test_metrics_report_served_queries(self):
        clock = VirtualClock()
        runtime = make_runtime(clock=clock)  # default: a live registry
        assert runtime.metrics_registry.enabled
        with runtime:
            requests = [
                QueryRequest(queries=probe_queries(1, seed=seed), k=3) for seed in range(4)
            ]
            futures = [runtime.submit(request) for request in requests]
            for future in futures:  # max_batch=4: the batch flushes on size
                future.result(timeout=30)
            # A second full batch (size-flushed again: the virtual clock never
            # fires the linger timer) of identical queries -> replica-cache hits.
            repeats = [runtime.submit(requests[0]) for _ in range(4)]
            for future in repeats:
                future.result(timeout=30)
            clock.advance(2.0)  # virtual uptime, so qps is well-defined
            snapshot = runtime.metrics()
        slo = snapshot["slo"]
        assert slo["queries"] == 8
        assert slo["uptime_seconds"] == 2.0
        assert slo["qps"] == 4.0
        assert slo["mean_batch_occupancy"] > 0
        assert slo["cache_hit_rate"] > 0
        families = snapshot["metrics"]
        assert families["server_batch_occupancy"]["series"][0]["count"] >= 1
        assert families["server_queue_wait_seconds"]["series"][0]["count"] == 8
        (backend,) = families["engine_query_seconds"]["series"]
        assert backend["labels"]["backend"] == "bruteforce"
        assert backend["count"] >= 1  # replica scans land in the shared registry

    def test_ingest_lag_stream_and_checkpoint_metrics(self, tmp_path):
        clock = VirtualClock()
        engine = make_engine()
        seed_engine(engine, 8)
        runtime = make_runtime(
            engine,
            clock=clock,
            checkpoint_dir=tmp_path / "ckpt",
            publish_every_groups=1,
        )
        with runtime:
            stream = tmp_path / "stream.jsonl"
            write_stream(stream, range(2000, 2006))
            runtime.attach_stream(stream)
            runtime.submit_ingest([make_trajectory(3000 + i) for i in range(3)])
            runtime.flush_ingest()  # drains the wave + all 6 stream records
            snapshot = runtime.metrics()
        slo = snapshot["slo"]
        families = snapshot["metrics"]
        # The lag gauges drained to zero but their peaks recorded the burst.
        assert slo["ingest_lag_records"] == 0
        assert slo["ingest_lag_records_peak"] >= 3
        assert slo["ingest_lag_bytes"] == 0
        assert slo["ingest_lag_bytes_peak"] > 0
        assert families["server_ingested_records_total"]["series"][0]["value"] == 9
        assert families["server_ingested_waves_total"]["series"][0]["value"] == 1
        assert families["server_stream_bytes_total"]["series"][0]["value"] > 0
        # flush_ingest force-checkpoints; its latency was observed (0 virtual s).
        assert families["server_checkpoints_total"]["series"][0]["value"] >= 1
        assert families["server_checkpoint_seconds"]["series"][0]["count"] >= 1

    def test_null_registry_disables_collection_but_not_serving(self, tmp_path):
        engine = make_engine()
        seed_engine(engine, 8)
        runtime = ServingRuntime(
            engine,
            ServerConfig(max_batch=2, linger=0.01, num_workers=1),
            metrics=NULL_REGISTRY,
        )
        assert not runtime.metrics_registry.enabled
        assert not engine.metrics_registry.enabled  # the primary stays unbound
        with runtime:
            response = runtime.query(QueryRequest(queries=probe_queries(2), k=3), timeout=30)
            assert response.ids.shape == (2, 3)
            snapshot = runtime.metrics()
        assert snapshot["metrics"] == {}
        assert snapshot["slo"]["queries"] == 0.0  # zeros, same shape as enabled
        target = tmp_path / "snapshot.json"
        assert runtime.dump_metrics(target) == target
        assert json.loads(target.read_text())["slo"]["qps"] == 0.0

    def test_runtime_adopts_a_prebound_engine_registry(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        engine = make_engine()
        seed_engine(engine, 8)
        engine.bind_metrics(registry)
        runtime = make_runtime(engine)
        assert runtime.metrics_registry is registry  # one registry, one snapshot

    def test_worker_death_and_respawn_are_counted(self):
        hooks = FaultInjector()
        hooks.arm_kill()
        runtime = make_runtime(hooks=hooks, num_workers=2, max_worker_respawns=2)
        with runtime:
            request = QueryRequest(queries=probe_queries(1), k=2)
            runtime.query(request, timeout=30)  # first batch trips the kill
            runtime.query(request, timeout=30)
            families = runtime.metrics()["metrics"]
        assert families["server_worker_deaths_total"]["series"][0]["value"] == 1
        assert families["server_worker_respawns_total"]["series"][0]["value"] == 1
