"""The `IndexBackend` conformance test-kit.

This module is the executable contract a backend must honour to be a drop-in
behind the :class:`repro.api.Engine` facade (see "The IndexBackend registry"
in ``docs/ARCHITECTURE.md``).  ``tests/test_backend_conformance.py`` runs it
against **every** backend registered at collection time — the built-in exact
backends, the ANN backends, and any third-party registration that happened
before collection.  A third-party package can also import the suite directly
and parametrize it over its own backend name:

    from backend_conformance import IndexBackendConformanceSuite

    def pytest_generate_tests(metafunc):
        if "backend_name" in metafunc.fixturenames:
            metafunc.parametrize("backend_name", ["my-backend"])

    class TestMyBackend(IndexBackendConformanceSuite):
        pass

What the contract requires of everyone:

* ids are global, caller-echoed, never re-numbered; auto ids are sequential;
* ``top_k`` returns ``min(k, len(backend))`` columns, distances ascending
  with ties broken by id, each returned distance being the **true** Euclidean
  distance of the returned id (approximate backends may return different
  *ids* than the oracle, but never fabricated distances);
* ``k < 1`` raises ``ValueError``; empty/fully-tombstoned indexes answer
  zero-width results; ``ranks_of`` on an empty index raises ``ValueError``;
* ``ranks_of`` is exact for every backend (rank = 1 + rows sorting strictly
  before the truth by ``(distance, id)``) — approximation is only ever
  allowed in ``top_k`` recall;
* ``generation`` increases on every mutation (the engine's query cache keys
  on it), ``next_id`` only moves forward and survives snapshots;
* snapshot → restore through the engine is **bit-stable**: the replica
  answers queries bit-identically;
* backends without removal support raise
  :class:`~repro.api.backends.UnsupportedOperation` from ``remove`` and
  return ``False`` from ``compact``.

Backends expose an optional ``is_exact`` attribute (default assumed
``True``): exact backends are additionally held to oracle-identical
neighbour ids; approximate ones to the faithfulness invariants above.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    Engine,
    EngineConfig,
    QueryRequest,
    UnsupportedOperation,
    create_backend,
)

#: Geometry small enough that a ~60-row corpus exercises chunk boundaries,
#: shard seals and multi-list probing.
SMALL_GEOMETRY = dict(shard_capacity=16, query_chunk_size=4, database_chunk_size=8)


def _unused_encoder(batch):  # pragma: no cover - conformance never encodes
    raise AssertionError("conformance tests ingest vectors, never trajectories")


def make_backend(backend_name: str, **overrides):
    geometry = dict(SMALL_GEOMETRY)
    geometry.update(overrides)
    return create_backend(backend_name, **geometry)


def make_engine(backend_name: str, **config_overrides) -> Engine:
    return Engine(
        _unused_encoder,
        EngineConfig(backend=backend_name, **SMALL_GEOMETRY, **config_overrides),
    )


def is_exact(backend) -> bool:
    return bool(getattr(backend, "is_exact", True))


def oracle_on(vectors: np.ndarray, ids: np.ndarray | None = None):
    """The semantics oracle: a bruteforce backend over the same rows."""
    oracle = create_backend("bruteforce")
    oracle.add(vectors, ids=ids)
    return oracle


def exact_distances(queries: np.ndarray, vectors: np.ndarray, ids: np.ndarray) -> dict:
    """id -> exact distance column, for faithfulness checks (float64 ref)."""
    diffs = queries[:, None, :].astype(np.float64) - vectors[None, :, :].astype(np.float64)
    distances = np.sqrt((diffs**2).sum(axis=2))
    return {int(row_id): distances[:, col] for col, row_id in enumerate(ids)}


def assert_faithful(result, queries, vectors, ids, alive_ids):
    """The invariants every backend's top_k answer must satisfy."""
    reference = exact_distances(queries, vectors, ids)
    alive = set(int(i) for i in alive_ids)
    for row in range(result.indices.shape[0]):
        row_ids = result.indices[row]
        row_d = result.distances[row]
        # Ascending by (distance, id): the documented tie-break everywhere.
        order = np.lexsort((row_ids, row_d))
        assert np.array_equal(order, np.arange(len(row_ids)))
        assert len(set(int(i) for i in row_ids)) == len(row_ids), "duplicate id in one answer"
        for col, row_id in enumerate(row_ids):
            assert int(row_id) in alive, f"returned id {row_id} is not an alive row"
            np.testing.assert_allclose(
                row_d[col], reference[int(row_id)][row], rtol=1e-3, atol=1e-3,
                err_msg="returned distance is not the true distance of the returned id",
            )


class IndexBackendConformanceSuite:
    """Parametrize ``backend_name`` over the backends under test (see module
    docstring); every test then runs once per backend."""

    # Fixtures live on the class so they travel with the suite wherever it is
    # inherited, and are self-seeded so third-party test trees need no extra
    # conftest support.
    @pytest.fixture()
    def corpus(self):
        """A 60x6 duplicate-free random corpus (ties are measure-zero)."""
        return np.random.default_rng(101).standard_normal((60, 6)).astype(np.float32)

    @pytest.fixture()
    def dup_corpus(self, corpus):
        """The corpus with exact duplicate rows baked in.

        Kept separate from ``corpus``: when exact-equal distances straddle
        the k boundary, *either* tie member is a documented-correct answer
        (the chunked backend's partial selection may keep a different one
        than the stable oracle sort), so oracle-identity assertions use the
        duplicate-free corpus and duplicates get targeted tests where the
        tie sits strictly inside the top-k.
        """
        vectors = corpus.copy()
        vectors[17] = vectors[3]  # exact duplicate pair (3, 17)
        vectors[41] = vectors[20]  # and another (20, 41)
        return vectors

    @pytest.fixture()
    def queries(self):
        return np.random.default_rng(202).standard_normal((7, 6)).astype(np.float32)

    # ------------------------------------------------------------------ #
    # Ids and the add contract
    # ------------------------------------------------------------------ #
    def test_add_assigns_sequential_ids(self, backend_name, corpus):
        backend = make_backend(backend_name)
        first = backend.add(corpus[:40])
        second = backend.add(corpus[40:])
        np.testing.assert_array_equal(first, np.arange(40))
        np.testing.assert_array_equal(second, np.arange(40, 60))
        assert len(backend) == 60
        assert backend.next_id == 60
        assert backend.dim == 6

    def test_explicit_ids_echoed_verbatim_in_results(self, backend_name, corpus, queries):
        backend = make_backend(backend_name)
        ids = np.arange(60, dtype=np.int64) * 7 + 1000  # sparse, non-contiguous
        returned = backend.add(corpus, ids=ids)
        np.testing.assert_array_equal(returned, ids)
        result = backend.top_k(queries, 5)
        assert set(int(i) for i in result.indices.ravel()) <= set(int(i) for i in ids)
        assert backend.next_id == int(ids.max()) + 1

    def test_duplicate_and_misshapen_ids_rejected(self, backend_name, corpus):
        backend = make_backend(backend_name)
        backend.add(corpus[:5], ids=np.arange(5))
        with pytest.raises(ValueError):
            backend.add(corpus[5:7], ids=np.array([3, 100]))  # 3 already present
        with pytest.raises(ValueError):
            backend.add(corpus[5:7], ids=np.array([8, 8]))  # not unique
        with pytest.raises(ValueError):
            backend.add(corpus[5:7], ids=np.arange(3))  # wrong length
        with pytest.raises(ValueError):
            backend.add(np.zeros((2, 9), dtype=np.float32))  # wrong dim

    # ------------------------------------------------------------------ #
    # Query semantics
    # ------------------------------------------------------------------ #
    def test_top_k_is_faithful_and_exact_backends_match_oracle(
        self, backend_name, corpus, queries
    ):
        backend = make_backend(backend_name)
        backend.add(corpus)
        result = backend.top_k(queries, 5)
        assert result.indices.shape == (7, 5)
        assert result.indices.dtype == np.int64
        assert result.distances.dtype == np.float32
        assert_faithful(result, queries, corpus, np.arange(60), np.arange(60))
        if is_exact(backend):
            oracle = oracle_on(corpus)
            expected = oracle.top_k(queries, 5)
            np.testing.assert_array_equal(result.indices, expected.indices)
            np.testing.assert_allclose(result.distances, expected.distances, rtol=1e-5)

    def test_self_query_returns_self_first(self, backend_name, dup_corpus):
        backend = make_backend(backend_name)
        backend.add(dup_corpus)
        # Rows 3/17 and 20/41 are exact duplicates: the smaller id wins the
        # zero-distance tie.  k=2 keeps the tie strictly inside the top-k
        # (at k=1 the boundary splits the tie and either member is correct).
        probes = np.array([0, 5, 3, 17, 20, 41, 59])
        result = backend.top_k(dup_corpus[probes], 2)
        expected_first = np.array([0, 5, 3, 3, 20, 20, 59])
        np.testing.assert_array_equal(result.indices[:, 0], expected_first)
        # Float32 |q|^2+|d|^2-2qd cancellation: "zero" only up to ~1e-3 ulps.
        np.testing.assert_allclose(result.distances[:, 0], 0.0, atol=5e-3)

    def test_duplicate_vectors_tie_break_by_id(self, backend_name, dup_corpus):
        """If both members of a duplicate pair are returned, the smaller id
        comes first at equal distance (the oracle's stable order)."""
        backend = make_backend(backend_name)
        backend.add(dup_corpus)
        result = backend.top_k(dup_corpus[[3]], 10)
        ids = [int(i) for i in result.indices[0]]
        assert ids[0] == 3 and ids[1] == 17  # both duplicates, id order
        assert result.distances[0, 0] == result.distances[0, 1]

    def test_k_edge_cases(self, backend_name, corpus, queries):
        """k < 1 raises; k > corpus clamps to the corpus; k == corpus works."""
        backend = make_backend(backend_name)
        backend.add(corpus[:9])
        with pytest.raises(ValueError):
            backend.top_k(queries, 0)
        with pytest.raises(ValueError):
            backend.top_k(queries, -3)
        clamped = backend.top_k(queries, 1000)
        assert clamped.indices.shape == (7, 9)
        # k == corpus size probes everything: every backend is exact here.
        expected = oracle_on(corpus[:9]).top_k(queries, 9)
        np.testing.assert_array_equal(clamped.indices, expected.indices)
        np.testing.assert_allclose(clamped.distances, expected.distances, rtol=1e-5)

    def test_empty_index_and_empty_query_batch(self, backend_name, corpus, queries):
        backend = make_backend(backend_name)
        result = backend.top_k(queries, 5)
        assert result.indices.shape == (7, 0)
        assert result.distances.shape == (7, 0)
        with pytest.raises(ValueError):
            backend.ranks_of(queries, np.zeros(7, dtype=np.int64))
        backend.add(corpus)
        no_queries = backend.top_k(np.zeros((0, 6), dtype=np.float32), 5)
        assert no_queries.indices.shape == (0, 5)

    def test_ranks_of_is_exact_for_every_backend(self, backend_name, corpus, queries):
        backend = make_backend(backend_name)
        backend.add(corpus)
        truth = np.random.default_rng(303).integers(0, 60, size=7)
        oracle = oracle_on(corpus)
        np.testing.assert_array_equal(
            backend.ranks_of(queries, truth), oracle.ranks_of(queries, truth)
        )

    def test_query_dimension_mismatch_raises(self, backend_name, corpus):
        backend = make_backend(backend_name)
        backend.add(corpus)
        with pytest.raises(ValueError):
            backend.top_k(np.zeros((2, 9), dtype=np.float32), 3)

    # ------------------------------------------------------------------ #
    # Mutation: remove / compact
    # ------------------------------------------------------------------ #
    def test_remove_and_compact_roundtrip(self, backend_name, corpus, queries):
        backend = make_backend(backend_name)
        ids = backend.add(corpus)
        if not backend.supports_removal:
            with pytest.raises(UnsupportedOperation):
                backend.remove(ids[:5])
            assert backend.compact() is False
            return
        generation = backend.generation
        assert backend.remove(ids[:20]) == 20
        assert backend.generation > generation
        assert len(backend) == 40
        assert backend.remove(ids[:3]) == 0  # already dead: not double-counted
        survivors = np.arange(20, 60)
        result = backend.top_k(queries, 8)
        assert not np.isin(ids[:20], result.indices).any()
        assert_faithful(result, queries, corpus, np.arange(60), survivors)
        if is_exact(backend):
            expected = oracle_on(corpus[20:], ids=survivors).top_k(queries, 8)
            np.testing.assert_array_equal(result.indices, expected.indices)
        assert backend.compact()
        assert len(backend) == 40
        compacted = backend.top_k(queries, 8)
        assert not np.isin(ids[:20], compacted.indices).any()
        assert_faithful(compacted, queries, corpus, np.arange(60), survivors)
        # Compaction must not reuse reclaimed ids.
        fresh = backend.add(corpus[:2])
        assert fresh.min() >= 60

    def test_tombstoned_id_cannot_be_readded_until_compact(self, backend_name, corpus):
        """Re-adding a tombstoned id would store two rows under one id and
        make the engine's snapshot unrestorable; after compact the row is
        physically gone and the id is usable again."""
        backend = make_backend(backend_name)
        ids = backend.add(corpus[:10])
        if not backend.supports_removal:
            pytest.skip(f"backend '{backend_name}' is append-only")
        backend.remove(ids[2:4])
        with pytest.raises(ValueError, match="tombstoned"):
            backend.add(corpus[10:12], ids=np.array([2, 3]))
        assert backend.compact()
        replacement = backend.add(corpus[10:12], ids=np.array([2, 3]))
        np.testing.assert_array_equal(replacement, [2, 3])
        assert len(backend) == 10

    def test_fully_tombstoned_index_answers_empty(self, backend_name, corpus, queries):
        backend = make_backend(backend_name)
        ids = backend.add(corpus[:10])
        if not backend.supports_removal:
            pytest.skip(f"backend '{backend_name}' is append-only")
        assert backend.remove(ids) == 10
        assert len(backend) == 0
        result = backend.top_k(queries, 5)
        assert result.indices.shape == (7, 0)

    # ------------------------------------------------------------------ #
    # Generation counter and the engine's query cache
    # ------------------------------------------------------------------ #
    def test_generation_invalidates_engine_query_cache(self, backend_name, corpus, queries):
        engine = make_engine(backend_name)
        engine.ingest_vectors(corpus[:30])
        request = QueryRequest(queries=queries, k=3)
        first = engine.query(request)
        assert engine.query(request) is first  # cache hit on identical state
        assert engine.cache_stats["hits"] == 1
        engine.ingest_vectors(corpus[30:])
        after_add = engine.query(request)
        assert after_add is not first  # add bumped the generation
        if engine.backend.supports_removal:
            engine.remove(np.arange(5))
            after_remove = engine.query(request)
            assert after_remove is not after_add  # remove bumped it too
            assert not np.isin(np.arange(5), after_remove.ids).any()

    # ------------------------------------------------------------------ #
    # Snapshot / restore bit-stability
    # ------------------------------------------------------------------ #
    def test_snapshot_restore_is_bit_stable(self, backend_name, corpus, queries, tmp_path):
        engine = make_engine(backend_name)
        engine.ingest_vectors(corpus[:40], trajectory_ids=range(5000, 5040))
        engine.ingest_vectors(corpus[40:], trajectory_ids=range(5040, 5060))
        if engine.backend.supports_removal:
            engine.remove(np.arange(7, 19))
        info = engine.snapshot(tmp_path / "snap")
        assert info.backend == backend_name
        replica = Engine.restore(info.path, _unused_encoder)
        assert replica.backend.next_id == engine.backend.next_id
        original = engine.query(QueryRequest(queries=queries, k=10))
        restored = replica.query(QueryRequest(queries=queries, k=10))
        np.testing.assert_array_equal(original.ids, restored.ids)
        assert (original.distances == restored.distances).all()  # bitwise
        np.testing.assert_array_equal(original.trajectory_ids, restored.trajectory_ids)
        # And the replica keeps being bit-stable through its own snapshot.
        second = Engine.restore(
            replica.snapshot(tmp_path / "snap2").path, _unused_encoder
        )
        again = second.query(QueryRequest(queries=queries, k=10))
        np.testing.assert_array_equal(original.ids, again.ids)
        assert (original.distances == again.distances).all()
