"""Tests for the evaluation metrics and the similarity-search harness."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    accuracy,
    binary_classification_report,
    euclidean_distance_matrix,
    f1_score,
    hit_ratio,
    knearest_precision,
    macro_f1,
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_rank,
    micro_f1,
    most_similar_search_report,
    multiclass_classification_report,
    precision_at_k,
    ranking_report,
    ranks_of_ground_truth,
    recall_at_k,
    regression_report,
    roc_auc,
    root_mean_squared_error,
    top_k_indices,
)


class TestRegressionMetrics:
    def test_perfect_predictions(self):
        truth = np.array([1.0, 2.0, 3.0])
        assert mean_absolute_error(truth, truth) == 0.0
        assert root_mean_squared_error(truth, truth) == 0.0
        assert mean_absolute_percentage_error(truth, truth) == 0.0

    def test_known_values(self):
        truth = np.array([100.0, 200.0])
        predictions = np.array([110.0, 180.0])
        assert mean_absolute_error(truth, predictions) == pytest.approx(15.0)
        assert root_mean_squared_error(truth, predictions) == pytest.approx(np.sqrt((100 + 400) / 2))
        assert mean_absolute_percentage_error(truth, predictions) == pytest.approx((10 + 10) / 2)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_error(np.zeros(3), np.zeros(4))

    def test_regression_report_keys(self):
        report = regression_report(np.ones(4), np.ones(4) * 2)
        assert set(report) == {"MAE", "MAPE", "RMSE"}

    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=20),
        shift=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_property_mae_bounded_by_rmse(self, values, shift):
        truth = np.array(values)
        predictions = truth + shift
        assert mean_absolute_error(truth, predictions) <= root_mean_squared_error(truth, predictions) + 1e-9


class TestClassificationMetrics:
    def test_accuracy_and_f1(self):
        truth = np.array([1, 0, 1, 1, 0])
        predictions = np.array([1, 0, 0, 1, 1])
        assert accuracy(truth, predictions) == pytest.approx(0.6)
        # precision 2/3, recall 2/3 -> f1 = 2/3
        assert f1_score(truth, predictions) == pytest.approx(2 / 3)

    def test_f1_degenerate_cases(self):
        assert f1_score(np.array([0, 0]), np.array([0, 0])) == 0.0

    def test_auc_perfect_and_random(self):
        truth = np.array([0, 0, 1, 1])
        assert roc_auc(truth, np.array([0.1, 0.2, 0.8, 0.9])) == pytest.approx(1.0)
        assert roc_auc(truth, np.array([0.9, 0.8, 0.2, 0.1])) == pytest.approx(0.0)
        assert roc_auc(np.array([1, 1]), np.array([0.5, 0.5])) == 0.5  # no negatives

    def test_auc_with_ties(self):
        truth = np.array([0, 1, 0, 1])
        assert roc_auc(truth, np.array([0.5, 0.5, 0.5, 0.5])) == pytest.approx(0.5)

    def test_micro_macro_f1(self):
        truth = np.array([0, 0, 1, 2])
        predictions = np.array([0, 0, 1, 1])
        assert micro_f1(truth, predictions) == pytest.approx(0.75)
        assert 0.0 < macro_f1(truth, predictions) < 1.0

    def test_recall_at_k(self):
        truth = np.array([0, 2])
        probabilities = np.array([[0.9, 0.05, 0.05], [0.4, 0.35, 0.25]])
        assert recall_at_k(truth, probabilities, k=1) == pytest.approx(0.5)
        assert recall_at_k(truth, probabilities, k=3) == pytest.approx(1.0)

    def test_recall_at_k_validates_shape(self):
        with pytest.raises(ValueError):
            recall_at_k(np.array([0]), np.array([0.5, 0.5]))

    def test_report_keys(self):
        binary = binary_classification_report(np.array([0, 1]), np.array([0, 1]), np.array([0.1, 0.9]))
        assert set(binary) == {"ACC", "F1", "AUC"}
        multi = multiclass_classification_report(
            np.array([0, 1]), np.array([0, 1]), np.eye(2), k=2
        )
        assert set(multi) == {"Micro-F1", "Macro-F1", "Recall@2"}


class TestRankingMetrics:
    def test_mean_rank_and_hit_ratio(self):
        ranks = np.array([1, 3, 10])
        assert mean_rank(ranks) == pytest.approx(14 / 3)
        assert hit_ratio(ranks, 1) == pytest.approx(1 / 3)
        assert hit_ratio(ranks, 5) == pytest.approx(2 / 3)

    def test_ranking_report_keys(self):
        assert set(ranking_report(np.array([1, 2]))) == {"MR", "HR@1", "HR@5"}

    def test_precision_at_k(self):
        retrieved = np.array([[0, 1, 2], [3, 4, 5]])
        relevant = np.array([[0, 1, 9], [9, 8, 7]])
        assert precision_at_k(retrieved, relevant) == pytest.approx((2 / 3 + 0) / 2)

    def test_precision_at_k_shape_mismatch(self):
        with pytest.raises(ValueError):
            precision_at_k(np.zeros((2, 3)), np.zeros((2, 2)))


class TestSimilarityHarness:
    def test_euclidean_distance_matrix(self):
        queries = np.array([[0.0, 0.0], [1.0, 1.0]])
        database = np.array([[0.0, 0.0], [3.0, 4.0]])
        distances = euclidean_distance_matrix(queries, database)
        assert distances[0, 0] == pytest.approx(0.0)
        assert distances[0, 1] == pytest.approx(5.0)

    def test_ranks_of_ground_truth(self):
        distances = np.array([[0.5, 0.1, 0.9], [0.2, 0.3, 0.05]])
        ground_truth = {0: 0, 1: 2}
        ranks = ranks_of_ground_truth(distances, ground_truth)
        np.testing.assert_array_equal(ranks, [2, 1])

    def test_most_similar_search_report(self):
        distances = np.array([[0.0, 1.0], [1.0, 0.0]])
        report = most_similar_search_report(distances, {0: 0, 1: 1})
        assert report["MR"] == pytest.approx(1.0)
        assert report["HR@1"] == pytest.approx(1.0)

    def test_top_k_indices_and_knearest_precision(self):
        original = np.array([[0.0, 1.0, 2.0, 3.0]])
        slightly_perturbed = np.array([[0.1, 0.9, 2.5, 3.5]])
        very_perturbed = np.array([[3.0, 2.0, 1.0, 0.0]])
        assert top_k_indices(original, 2).tolist() == [[0, 1]]
        assert knearest_precision(original, slightly_perturbed, k=2) == pytest.approx(1.0)
        assert knearest_precision(original, very_perturbed, k=2) == pytest.approx(0.0)
