"""Tests for trajectory datatypes, the congestion model and transfer matrices."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roadnet import CityConfig, generate_city
from repro.trajectory import (
    REFERENCE_EPOCH,
    CongestionModel,
    GPSPoint,
    RawTrajectory,
    Trajectory,
    day_of_week,
    hour_of_day,
    is_weekend,
    minute_of_day,
    transfer_probability_matrix,
    visit_frequencies,
)


class TestTimeHelpers:
    def test_minute_of_day_range(self):
        assert minute_of_day(REFERENCE_EPOCH) == 1
        assert minute_of_day(REFERENCE_EPOCH + 86399) == 1440

    def test_day_of_week_reference_is_monday(self):
        assert day_of_week(REFERENCE_EPOCH) == 1
        assert day_of_week(REFERENCE_EPOCH + 5 * 86400) == 6

    def test_is_weekend(self):
        assert not is_weekend(REFERENCE_EPOCH)                  # Monday
        assert is_weekend(REFERENCE_EPOCH + 5 * 86400)          # Saturday
        assert is_weekend(REFERENCE_EPOCH + 6 * 86400)          # Sunday

    def test_hour_of_day(self):
        assert hour_of_day(REFERENCE_EPOCH + 3 * 3600 + 120) == 3

    @settings(max_examples=30, deadline=None)
    @given(offset=st.integers(min_value=0, max_value=13 * 86400))
    def test_property_minute_and_day_ranges(self, offset):
        timestamp = REFERENCE_EPOCH + offset
        assert 1 <= minute_of_day(timestamp) <= 1440
        assert 1 <= day_of_week(timestamp) <= 7


class TestTrajectoryTypes:
    def _trajectory(self):
        return Trajectory(
            roads=[1, 2, 3, 4],
            timestamps=[float(REFERENCE_EPOCH + 60 * i) for i in range(4)],
            user_id=3,
            occupied=1,
            trajectory_id=17,
        )

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Trajectory(roads=[1, 2], timestamps=[0.0])

    def test_basic_properties(self):
        trajectory = self._trajectory()
        assert len(trajectory) == trajectory.hops == 4
        assert trajectory.origin == 1 and trajectory.destination == 4
        assert trajectory.travel_time == pytest.approx(180.0)

    def test_minute_and_day_indices(self):
        trajectory = self._trajectory()
        np.testing.assert_array_equal(trajectory.minute_indices(), [1, 2, 3, 4])
        np.testing.assert_array_equal(trajectory.day_indices(), [1, 1, 1, 1])

    def test_time_intervals_symmetric(self):
        intervals = self._trajectory().time_intervals()
        assert intervals.shape == (4, 4)
        np.testing.assert_allclose(intervals, intervals.T)
        np.testing.assert_allclose(np.diag(intervals), np.zeros(4))
        assert intervals[0, 3] == pytest.approx(180.0)

    def test_has_loop(self):
        assert not self._trajectory().has_loop()
        looping = Trajectory(roads=[1, 2, 1], timestamps=[0.0, 1.0, 2.0])
        assert looping.has_loop()

    def test_copy_is_deep(self):
        trajectory = self._trajectory()
        clone = trajectory.copy()
        clone.roads[0] = 99
        assert trajectory.roads[0] == 1

    def test_raw_trajectory(self):
        raw = RawTrajectory(points=[GPSPoint(0.0, 0.0, 10.0), GPSPoint(5.0, 5.0, 20.0)])
        assert len(raw) == 2
        assert raw.duration == pytest.approx(10.0)
        assert raw.coordinates().shape == (2, 2)
        assert raw.timestamps().tolist() == [10.0, 20.0]


class TestCongestionModel:
    @pytest.fixture()
    def network(self):
        return generate_city(CityConfig(grid_rows=5, grid_cols=5, seed=0))

    def test_rush_hour_slower_than_night(self, network):
        model = CongestionModel(network)
        road = network.road_ids()[0]
        rush = model.travel_time(road, REFERENCE_EPOCH + 8 * 3600)
        night = model.travel_time(road, REFERENCE_EPOCH + 3 * 3600)
        assert rush > night

    def test_weekend_profile_differs(self, network):
        model = CongestionModel(network)
        road = network.road_ids()[0]
        weekday_morning = model.travel_time(road, REFERENCE_EPOCH + 8 * 3600)
        weekend_morning = model.travel_time(road, REFERENCE_EPOCH + 5 * 86400 + 8 * 3600)
        assert weekday_morning > weekend_morning

    def test_speed_factor_bounds(self, network):
        model = CongestionModel(network)
        rng = np.random.default_rng(0)
        for hour in range(24):
            factor = model.speed_factor(network.road_ids()[3], REFERENCE_EPOCH + hour * 3600, rng=rng)
            assert 0.15 <= factor <= 1.2

    def test_residential_less_sensitive_than_primary(self, network):
        model = CongestionModel(network, noise_std=0.0)
        primary = next(s.road_id for s in network.segments if s.road_type == "primary")
        residential = next(s.road_id for s in network.segments if s.road_type == "residential")
        peak = REFERENCE_EPOCH + 8 * 3600
        assert (1 - model.speed_factor(primary, peak)) > (1 - model.speed_factor(residential, peak))

    def test_historical_average_between_extremes(self, network):
        model = CongestionModel(network, noise_std=0.0)
        road = network.road_ids()[0]
        average = model.historical_average_travel_time(road)
        free_flow = network.segment(road).free_flow_travel_time()
        peak = model.travel_time(road, REFERENCE_EPOCH + 8 * 3600)
        assert free_flow <= average <= peak * 1.01

    def test_hourly_profile_shape(self, network):
        model = CongestionModel(network, noise_std=0.0)
        profile = model.hourly_profile(network.road_ids()[0])
        assert profile.shape == (24,)
        assert profile[8] > profile[3]

    def test_invalid_slowdown(self, network):
        with pytest.raises(ValueError):
            CongestionModel(network, peak_slowdown=1.5)


class TestTransferMatrix:
    def test_rows_are_distributions_or_zero(self):
        network = generate_city(CityConfig(grid_rows=4, grid_cols=4, seed=1))
        ids = network.road_ids()
        trajectories = []
        # Walk along actual successors so transitions are valid.
        for start in ids[:10]:
            roads = [start]
            for _ in range(4):
                succ = network.successors(roads[-1])
                if not succ:
                    break
                roads.append(succ[0])
            times = [float(i * 30) for i in range(len(roads))]
            trajectories.append(Trajectory(roads=roads, timestamps=times))
        matrix = transfer_probability_matrix(network, trajectories)
        sums = matrix.sum(axis=1)
        assert np.all((np.isclose(sums, 1.0, atol=1e-5)) | (sums == 0.0))

    def test_transfer_counts_ratio(self):
        network = generate_city(CityConfig(grid_rows=4, grid_cols=4, seed=1))
        a = next(r for r in network.road_ids() if network.out_degree(r) >= 2)
        successors = network.successors(a)
        b, c = successors[0], successors[1]
        trajectories = [
            Trajectory(roads=[a, b], timestamps=[0.0, 1.0]),
            Trajectory(roads=[a, b], timestamps=[0.0, 1.0]),
            Trajectory(roads=[a, c], timestamps=[0.0, 1.0]),
        ]
        matrix = transfer_probability_matrix(network, trajectories)
        assert matrix[a, b] == pytest.approx(2 / 3)
        assert matrix[a, c] == pytest.approx(1 / 3)

    def test_smoothing_touches_unvisited_edges(self):
        network = generate_city(CityConfig(grid_rows=4, grid_cols=4, seed=1))
        matrix = transfer_probability_matrix(network, [], smoothing=1.0)
        source, target = network.edges[0]
        assert matrix[source, target] > 0

    def test_visit_frequencies_normalised(self):
        network = generate_city(CityConfig(grid_rows=4, grid_cols=4, seed=1))
        a, b = network.edges[0]
        freq = visit_frequencies(network, [Trajectory(roads=[a, b], timestamps=[0.0, 1.0])])
        assert freq.sum() == pytest.approx(1.0)
