"""Tests for the baseline models: node2vec, RNN/Transformer encoders, classical measures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BASELINE_NAMES,
    ClassicalSimilarity,
    Node2VecConfig,
    build_baseline,
    dtw_distance,
    edr_distance,
    frechet_distance,
    generate_walks,
    lcss_distance,
    node2vec_embeddings,
    trajectory_coordinates,
)
from repro.core import TravelTimeEstimator, TrajectoryClassifier, tiny_config
from repro.roadnet import CityConfig, generate_city
from repro.trajectory import (
    CongestionModel,
    DemandConfig,
    TrajectoryDataset,
    TrajectoryGenerator,
)


@pytest.fixture(scope="module")
def network():
    return generate_city(CityConfig(grid_rows=5, grid_cols=5, seed=8))


@pytest.fixture(scope="module")
def dataset(network):
    config = DemandConfig(num_drivers=6, num_days=7, trips_per_driver_per_day=2.0, seed=8)
    generator = TrajectoryGenerator(network, CongestionModel(network), config)
    result = generator.generate(num_trajectories=60)
    ds = TrajectoryDataset(network, result.trajectories, name="baseline-test")
    ds.chronological_split()
    return ds


class TestNode2Vec:
    def test_walks_follow_edges(self, network):
        walks = generate_walks(network, Node2VecConfig(walks_per_node=1, walk_length=6, seed=0))
        assert walks
        for walk in walks[:20]:
            assert network.validate_path(walk)

    def test_embeddings_shape_and_finite(self, network):
        embeddings = node2vec_embeddings(
            network, Node2VecConfig(dimensions=16, walks_per_node=1, walk_length=8, epochs=1, seed=0)
        )
        assert embeddings.shape == (network.num_roads, 16)
        assert np.isfinite(embeddings).all()

    def test_connected_roads_more_similar_than_random(self, network):
        embeddings = node2vec_embeddings(
            network, Node2VecConfig(dimensions=16, walks_per_node=2, walk_length=10, epochs=2, seed=0)
        )
        normalised = embeddings / (np.linalg.norm(embeddings, axis=1, keepdims=True) + 1e-9)
        rng = np.random.default_rng(0)
        neighbour_sims, random_sims = [], []
        for source, target in network.edges[:200]:
            neighbour_sims.append(float(normalised[source] @ normalised[target]))
            random_target = int(rng.integers(network.num_roads))
            random_sims.append(float(normalised[source] @ normalised[random_target]))
        assert np.mean(neighbour_sims) > np.mean(random_sims)


class TestLearnedBaselines:
    @pytest.mark.parametrize("name", BASELINE_NAMES)
    def test_pretrain_and_encode(self, name, network, dataset):
        config = tiny_config(batch_size=8, pretrain_epochs=1)
        cache: dict[int, np.ndarray] = {}
        model = build_baseline(name, network, config, node2vec_cache=cache)
        assert model.name == name
        history = model.pretrain(dataset.train_trajectories()[:16], epochs=1)
        assert len(history) == 1 and np.isfinite(history[0])
        vectors = model.encode(dataset.test_trajectories()[:5])
        assert vectors.shape == (5, config.d_model)
        assert np.isfinite(vectors).all()

    def test_unknown_baseline(self, network):
        with pytest.raises(ValueError):
            build_baseline("word2vec", network)

    def test_node2vec_cache_reused(self, network):
        config = tiny_config(batch_size=8)
        cache: dict[int, np.ndarray] = {}
        build_baseline("PIM", network, config, node2vec_cache=cache)
        first = cache[id(network)]
        build_baseline("Toast", network, config, node2vec_cache=cache)
        assert cache[id(network)] is first

    def test_baseline_works_with_finetuning_heads(self, network, dataset):
        """The shared interface lets the START fine-tuning heads drive baselines."""
        config = tiny_config(batch_size=8, finetune_epochs=1)
        model = build_baseline("Transformer", network, config)
        estimator = TravelTimeEstimator(model, config)
        estimator.fit(dataset.train_trajectories()[:24], epochs=1)
        predictions = estimator.predict(dataset.test_trajectories()[:4])
        assert predictions.shape == (4,)

        classifier = TrajectoryClassifier(model, num_classes=2, label_kind="occupied", config=config)
        classifier.fit(dataset.train_trajectories()[:24], epochs=1)
        assert classifier.predict(dataset.test_trajectories()[:4]).shape == (4,)

    def test_baseline_rejects_bad_road_embeddings(self, network):
        from repro.baselines import Toast

        with pytest.raises(ValueError):
            Toast(network, tiny_config(), road_embeddings=np.zeros((3, 3), dtype=np.float32))

    def test_trembr_uses_time(self, network, dataset):
        """Trembr's loss should include the travel-time term (different from traj2vec)."""
        config = tiny_config(batch_size=8)
        trembr = build_baseline("Trembr", network, config)
        traj2vec = build_baseline("traj2vec", network, config)
        assert trembr.reconstruct_time and not traj2vec.reconstruct_time


class TestClassicalMeasures:
    def _square(self, offset=0.0):
        return np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=np.float64) + offset

    def test_identical_sequences_have_zero_distance(self):
        a = self._square()
        assert dtw_distance(a, a) == pytest.approx(0.0)
        assert frechet_distance(a, a) == pytest.approx(0.0)
        assert lcss_distance(a, a, epsilon=0.1) == pytest.approx(0.0)
        assert edr_distance(a, a, epsilon=0.1) == pytest.approx(0.0)

    def test_distance_grows_with_offset(self):
        a = self._square()
        near = self._square(offset=10.0)
        far = self._square(offset=500.0)
        for measure in (dtw_distance, frechet_distance):
            assert measure(a, far) > measure(a, near)

    def test_lcss_and_edr_bounded(self):
        a = self._square()
        b = self._square(offset=1000.0)
        assert 0.0 <= lcss_distance(a, b) <= 1.0
        assert 0.0 <= edr_distance(a, b) <= 1.0

    def test_empty_sequences(self):
        empty = np.zeros((0, 2))
        a = self._square()
        assert dtw_distance(empty, a) == np.inf
        assert lcss_distance(empty, a) == 1.0
        assert edr_distance(empty, empty) == 0.0

    def test_classical_similarity_wrapper(self, network, dataset):
        wrapper = ClassicalSimilarity(network, "DTW")
        query = dataset.trajectories[0]
        database = dataset.trajectories[:5]
        distances = wrapper.distances_to_database(query, database)
        assert distances.shape == (5,)
        assert distances[0] == pytest.approx(0.0)  # distance to itself

    def test_classical_unknown_measure(self, network):
        with pytest.raises(ValueError):
            ClassicalSimilarity(network, "cosine")

    def test_trajectory_coordinates_shape(self, network, dataset):
        coords = trajectory_coordinates(network, dataset.trajectories[0])
        assert coords.shape == (len(dataset.trajectories[0]), 2)
