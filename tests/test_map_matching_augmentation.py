"""Tests for HMM map matching, augmentation strategies and detour ground truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.roadnet import CityConfig, generate_city
from repro.trajectory import (
    AUGMENTATION_NAMES,
    CongestionModel,
    DemandConfig,
    DetourConfig,
    HMMMapMatcher,
    MatchingConfig,
    TrajectoryAugmenter,
    TrajectoryGenerator,
    build_similarity_benchmark,
    historical_travel_times,
    make_detour,
)
from repro.utils.seeding import get_rng


@pytest.fixture(scope="module")
def network():
    return generate_city(CityConfig(grid_rows=6, grid_cols=6, seed=4))


@pytest.fixture(scope="module")
def generation(network):
    config = DemandConfig(num_drivers=6, num_days=5, trips_per_driver_per_day=3.0, seed=2)
    generator = TrajectoryGenerator(network, CongestionModel(network), config)
    return generator.generate(num_trajectories=60, emit_gps=True)


class TestMapMatching:
    def test_matching_recovers_most_roads(self, network, generation):
        matcher = HMMMapMatcher(network, MatchingConfig(search_radius=80.0))
        recovered = []
        for raw, truth in list(zip(generation.raw_trajectories, generation.trajectories))[:10]:
            matched = matcher.match(raw)
            assert matched is not None
            overlap = len(set(matched.roads) & set(truth.roads)) / len(set(truth.roads))
            recovered.append(overlap)
        assert np.mean(recovered) > 0.6

    def test_matched_paths_have_no_consecutive_duplicates(self, network, generation):
        matcher = HMMMapMatcher(network)
        matched = matcher.match(generation.raw_trajectories[0])
        assert all(a != b for a, b in zip(matched.roads, matched.roads[1:]))

    def test_match_returns_none_when_far_away(self, network):
        from repro.trajectory import GPSPoint, RawTrajectory

        far = RawTrajectory(points=[GPSPoint(1e7, 1e7, 0.0), GPSPoint(1e7, 1e7, 10.0)])
        assert HMMMapMatcher(network).match(far) is None

    def test_match_many_drops_unmatchable(self, network, generation):
        from repro.trajectory import GPSPoint, RawTrajectory

        far = RawTrajectory(points=[GPSPoint(1e7, 1e7, 0.0)])
        matcher = HMMMapMatcher(network)
        results = matcher.match_many([generation.raw_trajectories[0], far])
        assert len(results) == 1

    def test_candidates_sorted_by_distance(self, network):
        matcher = HMMMapMatcher(network)
        point = np.array(network.segments[0].midpoint)
        candidates = matcher.candidates(point)
        assert candidates
        distances = [d for _, d in candidates]
        assert distances == sorted(distances)


class TestAugmentation:
    @pytest.fixture()
    def augmenter(self, generation):
        history = historical_travel_times(generation.trajectories)
        return TrajectoryAugmenter(history, rng=get_rng(0))

    def test_trim_removes_prefix_or_suffix(self, augmenter, generation):
        trajectory = generation.trajectories[0]
        view = augmenter.trim(trajectory)
        assert 2 <= len(view) < len(trajectory)
        # The trimmed view is a contiguous slice from one of the two ends.
        joined = ",".join(map(str, view.roads))
        original = ",".join(map(str, trajectory.roads))
        assert joined in original

    def test_temporal_shift_changes_times_not_roads(self, augmenter, generation):
        max_deltas = []
        for trajectory in generation.trajectories[:10]:
            view = augmenter.temporal_shift(trajectory)
            assert view.roads == trajectory.roads
            deltas = np.abs(np.asarray(view.timestamps) - np.asarray(trajectory.timestamps))
            # Departure time must never move.
            assert deltas[0] == pytest.approx(0.0)
            max_deltas.append(deltas.max())
        # Across a handful of trajectories at least one visit time moves
        # measurably (it can stay put when a road's historical average equals
        # its current travel time).
        assert max(max_deltas) > 0.5

    def test_temporal_shift_preserves_monotonicity(self, augmenter, generation):
        for trajectory in generation.trajectories[:10]:
            view = augmenter.temporal_shift(trajectory)
            assert (np.diff(view.timestamps) > 0).all()

    def test_road_mask_marks_positions(self, augmenter, generation):
        trajectory = generation.trajectories[2]
        view = augmenter.road_mask(trajectory)
        assert view.roads == trajectory.roads
        assert len(view.mask_positions) >= 1
        assert all(0 <= p < len(trajectory) for p in view.mask_positions)

    def test_dropout_view_is_flagged(self, augmenter, generation):
        view = augmenter.dropout(generation.trajectories[3])
        assert view.use_embedding_dropout
        assert view.roads == generation.trajectories[3].roads

    def test_apply_dispatch_and_unknown(self, augmenter, generation):
        trajectory = generation.trajectories[4]
        for name in AUGMENTATION_NAMES:
            view = augmenter.apply(trajectory, name)
            assert len(view) >= 2
        with pytest.raises(ValueError):
            augmenter.apply(trajectory, "reverse")

    def test_make_views_returns_pair(self, augmenter, generation):
        first, second = augmenter.make_views(generation.trajectories[5], "mask", "dropout")
        assert first.mask_positions and second.use_embedding_dropout

    def test_historical_travel_times_positive(self, generation):
        history = historical_travel_times(generation.trajectories)
        assert history
        assert all(value > 0 for value in history.values())


class TestDetour:
    def test_make_detour_changes_roads_same_od(self, network, generation):
        rng = get_rng(3)
        found = 0
        for trajectory in generation.trajectories[:20]:
            detour = make_detour(network, trajectory, DetourConfig(), rng=rng)
            if detour is None:
                continue
            found += 1
            assert detour.roads != trajectory.roads
            assert detour.origin == trajectory.origin
            assert detour.destination == trajectory.destination
            assert (np.diff(detour.timestamps) > 0).all()
        assert found >= 5

    def test_detour_too_short_returns_none(self, network):
        from repro.trajectory import Trajectory

        tiny = Trajectory(roads=[0, 1, 2], timestamps=[0.0, 1.0, 2.0])
        assert make_detour(network, tiny) is None

    def test_benchmark_structure(self, network, generation):
        benchmark = build_similarity_benchmark(
            network, generation.trajectories, num_queries=8, num_negatives=20, rng=get_rng(0)
        )
        assert len(benchmark.queries) <= 8
        assert len(benchmark.queries) >= 4
        assert len(benchmark.database) >= len(benchmark.queries)
        for query_index, db_index in benchmark.ground_truth.items():
            assert benchmark.database[db_index].metadata["detour_of"] == benchmark.queries[query_index].trajectory_id
