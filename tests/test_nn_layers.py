"""Tests for modules, layers, attention and recurrent encoders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    GRU,
    LSTM,
    BiGRU,
    Dropout,
    Embedding,
    FeedForward,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    MultiHeadSelfAttention,
    Parameter,
    PositionalEncoding,
    Sequential,
    Tensor,
    TransformerEncoder,
    TransformerEncoderLayer,
)
from repro.utils.seeding import get_rng


class TinyModel(Module):
    def __init__(self):
        super().__init__()
        self.linear1 = Linear(4, 8, rng=get_rng(0))
        self.linear2 = Linear(8, 2, rng=get_rng(1))

    def forward(self, x):
        return self.linear2(self.linear1(x).relu())


class TestModuleSystem:
    def test_parameter_registration(self):
        model = TinyModel()
        names = [name for name, _ in model.named_parameters()]
        assert "linear1.weight" in names and "linear2.bias" in names
        assert len(model.parameters()) == 4

    def test_num_parameters(self):
        model = TinyModel()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_train_eval_propagates(self):
        seq = Sequential(Linear(3, 3), Dropout(0.5))
        seq.eval()
        assert all(not m.training for m in seq)

    def test_state_dict_roundtrip(self):
        model_a = TinyModel()
        model_b = TinyModel()
        model_b.load_state_dict(model_a.state_dict())
        np.testing.assert_allclose(model_a.linear1.weight.data, model_b.linear1.weight.data)

    def test_load_state_dict_shape_mismatch(self):
        model = TinyModel()
        state = model.state_dict()
        state["linear1.weight"] = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_load_state_dict_strict_missing(self):
        model = TinyModel()
        state = model.state_dict()
        del state["linear2.bias"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)
        model.load_state_dict(state, strict=False)

    def test_zero_grad(self):
        model = TinyModel()
        out = model(Tensor(np.ones((2, 4), dtype=np.float32))).sum()
        out.backward()
        assert model.linear1.weight.grad is not None
        model.zero_grad()
        assert model.linear1.weight.grad is None

    def test_module_list(self):
        layers = ModuleList([Linear(2, 2) for _ in range(3)])
        assert len(layers) == 3
        assert len(list(layers.named_parameters())) == 6


class TestLinearEmbedding:
    def test_linear_shapes(self):
        layer = Linear(5, 7, rng=get_rng(0))
        out = layer(Tensor(np.ones((3, 5), dtype=np.float32)))
        assert out.shape == (3, 7)

    def test_linear_no_bias(self):
        layer = Linear(5, 7, bias=False, rng=get_rng(0))
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_linear_gradient_flows(self):
        layer = Linear(3, 2, rng=get_rng(0))
        out = layer(Tensor(np.ones((4, 3), dtype=np.float32))).sum()
        out.backward()
        assert layer.weight.grad.shape == (3, 2)
        np.testing.assert_allclose(layer.bias.grad, 4 * np.ones(2))

    def test_embedding_lookup_shape(self):
        emb = Embedding(10, 6, rng=get_rng(0))
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 6)

    def test_embedding_padding_idx_zero_init(self):
        emb = Embedding(10, 6, padding_idx=0, rng=get_rng(0))
        np.testing.assert_allclose(emb.weight.data[0], np.zeros(6))


class TestNormalizationDropout:
    def test_layernorm_statistics(self):
        layer = LayerNorm(16)
        x = Tensor(np.random.default_rng(0).standard_normal((4, 16)).astype(np.float32) * 5 + 3)
        out = layer(x).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)

    def test_layernorm_gradients(self):
        layer = LayerNorm(8)
        x = Tensor(np.random.default_rng(1).standard_normal((2, 8)).astype(np.float32), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None and layer.gamma.grad is not None

    def test_dropout_eval_is_identity(self):
        layer = Dropout(0.5, rng=get_rng(0))
        layer.eval()
        x = Tensor(np.ones((10, 10)))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_dropout_train_scales(self):
        layer = Dropout(0.5, rng=get_rng(0))
        x = Tensor(np.ones((200, 200)))
        out = layer(x).data
        # Kept entries are scaled by 1/(1-p) = 2, expectation stays ~1.
        assert out.mean() == pytest.approx(1.0, abs=0.05)
        assert set(np.unique(out)).issubset({0.0, 2.0})

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestPositionalEncodingFFN:
    def test_positional_encoding_shape_and_range(self):
        pe = PositionalEncoding(16, max_len=64)
        x = Tensor(np.zeros((2, 10, 16), dtype=np.float32))
        out = pe(x).data
        assert out.shape == (2, 10, 16)
        assert np.abs(out).max() <= 1.0 + 1e-6

    def test_positional_encoding_distinct_positions(self):
        pe = PositionalEncoding(32, max_len=16)
        table = pe.encoding(16)
        assert not np.allclose(table[0], table[5])

    def test_positional_encoding_too_long(self):
        pe = PositionalEncoding(8, max_len=4)
        with pytest.raises(ValueError):
            pe(Tensor(np.zeros((1, 10, 8), dtype=np.float32)))

    def test_feedforward_shapes(self):
        ffn = FeedForward(12, 24, rng=get_rng(0))
        ffn.eval()
        out = ffn(Tensor(np.ones((2, 5, 12), dtype=np.float32)))
        assert out.shape == (2, 5, 12)


class TestAttention:
    def test_attention_output_shape(self):
        attn = MultiHeadSelfAttention(16, 4, dropout=0.0, rng=get_rng(0))
        x = Tensor(np.random.default_rng(0).standard_normal((2, 6, 16)).astype(np.float32))
        assert attn(x).shape == (2, 6, 16)

    def test_attention_weights_are_distributions(self):
        attn = MultiHeadSelfAttention(8, 2, dropout=0.0, rng=get_rng(0))
        x = Tensor(np.random.default_rng(1).standard_normal((1, 5, 8)).astype(np.float32))
        _, weights = attn(x, return_weights=True)
        np.testing.assert_allclose(weights.data.sum(axis=-1), np.ones((1, 5)), rtol=1e-5)

    def test_attention_respects_padding_mask(self):
        attn = MultiHeadSelfAttention(8, 2, dropout=0.0, rng=get_rng(0))
        x = Tensor(np.random.default_rng(2).standard_normal((1, 4, 8)).astype(np.float32))
        mask = np.array([[False, False, True, True]])
        _, weights = attn(x, key_padding_mask=mask, return_weights=True)
        np.testing.assert_allclose(weights.data[0, :, 2:], np.zeros((4, 2)), atol=1e-6)

    def test_attention_bias_shifts_weights(self):
        attn = MultiHeadSelfAttention(8, 2, dropout=0.0, rng=get_rng(0))
        x = Tensor(np.random.default_rng(3).standard_normal((1, 3, 8)).astype(np.float32))
        bias = np.zeros((1, 1, 3, 3), dtype=np.float32)
        bias[..., 0] = 50.0  # force everyone to attend to position 0
        _, weights = attn(x, attention_bias=Tensor(bias), return_weights=True)
        np.testing.assert_allclose(weights.data[0, :, 0], np.ones(3), atol=1e-3)

    def test_invalid_head_count(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)

    def test_encoder_layer_and_stack(self):
        encoder = TransformerEncoder(16, 4, num_layers=2, dropout=0.0, rng=get_rng(0))
        encoder.eval()
        x = Tensor(np.random.default_rng(0).standard_normal((2, 7, 16)).astype(np.float32))
        out = encoder(x)
        assert out.shape == (2, 7, 16)

    def test_encoder_layer_gradients_reach_all_parameters(self):
        layer = TransformerEncoderLayer(8, 2, dropout=0.0, rng=get_rng(0))
        x = Tensor(np.random.default_rng(0).standard_normal((2, 4, 8)).astype(np.float32))
        layer(x).sum().backward()
        missing = [name for name, p in layer.named_parameters() if p.grad is None]
        assert missing == []


class TestRecurrent:
    def test_gru_shapes(self):
        gru = GRU(6, 12, rng=get_rng(0))
        x = Tensor(np.random.default_rng(0).standard_normal((3, 5, 6)).astype(np.float32))
        all_h, final = gru(x)
        assert all_h.shape == (3, 5, 12)
        assert final.shape == (3, 12)

    def test_gru_respects_lengths(self):
        gru = GRU(4, 8, rng=get_rng(0))
        x = Tensor(np.random.default_rng(0).standard_normal((2, 6, 4)).astype(np.float32))
        all_h, final = gru(x, lengths=np.array([3, 6]))
        np.testing.assert_allclose(final.data[0], all_h.data[0, 2], atol=1e-6)
        np.testing.assert_allclose(final.data[1], all_h.data[1, 5], atol=1e-6)

    def test_lstm_shapes_and_grads(self):
        lstm = LSTM(5, 7, rng=get_rng(0))
        x = Tensor(np.random.default_rng(1).standard_normal((2, 4, 5)).astype(np.float32), requires_grad=True)
        _, final = lstm(x)
        final.sum().backward()
        assert x.grad is not None
        assert final.shape == (2, 7)

    def test_bigru_concatenates_directions(self):
        bigru = BiGRU(4, 6, rng=get_rng(0))
        x = Tensor(np.random.default_rng(2).standard_normal((2, 5, 4)).astype(np.float32))
        outputs, final = bigru(x)
        assert outputs.shape == (2, 5, 12)
        assert final.shape == (2, 12)
