"""Tests for self-supervised pre-training and downstream fine-tuning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Pretrainer,
    STARTModel,
    TravelTimeEstimator,
    TrajectoryClassifier,
    tiny_config,
)
from repro.nn import load_checkpoint, save_checkpoint
from repro.roadnet import CityConfig, generate_city
from repro.trajectory import (
    CongestionModel,
    DemandConfig,
    TrajectoryDataset,
    TrajectoryGenerator,
)


@pytest.fixture(scope="module")
def dataset():
    network = generate_city(CityConfig(grid_rows=5, grid_cols=5, seed=8))
    config = DemandConfig(num_drivers=6, num_days=7, trips_per_driver_per_day=3.0, seed=8)
    generator = TrajectoryGenerator(network, CongestionModel(network), config)
    result = generator.generate(num_trajectories=80)
    ds = TrajectoryDataset(network, result.trajectories, name="train-test")
    ds.chronological_split()
    return ds


class TestPretraining:
    def test_pretrain_reduces_loss(self, dataset):
        config = tiny_config(batch_size=16, pretrain_epochs=3)
        model = STARTModel.from_dataset(dataset, config)
        history = Pretrainer(model, config).pretrain(dataset.train_trajectories(), epochs=3)
        assert history.epochs == 3
        assert history.total[-1] < history.total[0]

    def test_pretrain_mask_only(self, dataset):
        config = tiny_config(use_contrastive_loss=False, pretrain_epochs=1)
        model = STARTModel.from_dataset(dataset, config)
        history = Pretrainer(model, config).pretrain(dataset.train_trajectories()[:24], epochs=1)
        assert history.contrastive[-1] == 0.0
        assert history.mask[-1] > 0.0

    def test_pretrain_contrastive_only(self, dataset):
        config = tiny_config(use_mask_loss=False, pretrain_epochs=1)
        model = STARTModel.from_dataset(dataset, config)
        history = Pretrainer(model, config).pretrain(dataset.train_trajectories()[:24], epochs=1)
        assert history.mask[-1] == 0.0
        assert history.contrastive[-1] > 0.0

    def test_pretrain_requires_data(self, dataset):
        config = tiny_config()
        model = STARTModel.from_dataset(dataset, config)
        with pytest.raises(ValueError):
            Pretrainer(model, config).pretrain([])

    def test_pretrain_with_each_augmentation_pair(self, dataset):
        for pair in (("mask", "dropout"), ("trim", "mask")):
            config = tiny_config(augmentations=pair, pretrain_epochs=1, batch_size=8)
            model = STARTModel.from_dataset(dataset, config)
            history = Pretrainer(model, config).pretrain(dataset.train_trajectories()[:16], epochs=1)
            assert np.isfinite(history.total[-1])

    def test_pretraining_changes_parameters(self, dataset):
        config = tiny_config(pretrain_epochs=1, batch_size=8)
        model = STARTModel.from_dataset(dataset, config)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        Pretrainer(model, config).pretrain(dataset.train_trajectories()[:16], epochs=1)
        after = model.state_dict()
        changed = any(not np.allclose(before[k], after[k]) for k in before)
        assert changed

    def test_checkpoint_roundtrip_after_pretraining(self, dataset, tmp_path):
        config = tiny_config(pretrain_epochs=1, batch_size=8)
        model = STARTModel.from_dataset(dataset, config)
        Pretrainer(model, config).pretrain(dataset.train_trajectories()[:16], epochs=1)
        path = save_checkpoint(model, tmp_path / "start.ckpt", metadata={"epochs": 1})
        clone = STARTModel.from_dataset(dataset, config.variant(seed=99))
        meta = load_checkpoint(clone, path)
        assert meta["epochs"] == 1
        np.testing.assert_allclose(
            model.encode(dataset.trajectories[:3]), clone.encode(dataset.trajectories[:3]), atol=1e-5
        )


class TestFineTuning:
    def test_travel_time_estimator_learns(self, dataset):
        config = tiny_config(finetune_epochs=4, batch_size=16)
        model = STARTModel.from_dataset(dataset, config)
        estimator = TravelTimeEstimator(model, config)
        history = estimator.fit(dataset.train_trajectories(), epochs=4)
        assert history.loss[-1] < history.loss[0]
        predictions = estimator.predict(dataset.test_trajectories())
        truth = np.array([t.travel_time for t in dataset.test_trajectories()])
        assert predictions.shape == truth.shape
        # Better than predicting zero seconds for everything.
        assert np.abs(predictions - truth).mean() < np.abs(truth).mean()

    def test_travel_time_requires_data(self, dataset):
        model = STARTModel.from_dataset(dataset, tiny_config())
        with pytest.raises(ValueError):
            TravelTimeEstimator(model).fit([])

    def test_classifier_learns_binary_label(self, dataset):
        config = tiny_config(finetune_epochs=4, batch_size=16)
        model = STARTModel.from_dataset(dataset, config)
        classifier = TrajectoryClassifier(model, num_classes=2, label_kind="occupied", config=config)
        history = classifier.fit(dataset.train_trajectories(), epochs=4)
        assert history.loss[-1] < history.loss[0]
        probabilities = classifier.predict_proba(dataset.test_trajectories())
        assert probabilities.shape == (len(dataset.test_trajectories()), 2)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-4)

    def test_classifier_driver_label(self, dataset):
        config = tiny_config(finetune_epochs=1, batch_size=16)
        model = STARTModel.from_dataset(dataset, config)
        classifier = TrajectoryClassifier(model, num_classes=6, label_kind="driver", config=config)
        classifier.fit(dataset.train_trajectories()[:32], epochs=1)
        predictions = classifier.predict(dataset.test_trajectories()[:10])
        assert predictions.shape == (10,)
        assert predictions.max() < 6

    def test_labels_of_matches_trajectories(self, dataset):
        model = STARTModel.from_dataset(dataset, tiny_config())
        classifier = TrajectoryClassifier(model, num_classes=2, label_kind="occupied")
        labels = classifier.labels_of(dataset.trajectories[:5])
        np.testing.assert_array_equal(labels, [t.occupied for t in dataset.trajectories[:5]])

    def test_pretraining_then_finetuning_pipeline(self, dataset):
        """End-to-end integration: pre-train, fine-tune, predict."""
        config = tiny_config(pretrain_epochs=1, finetune_epochs=2, batch_size=16)
        model = STARTModel.from_dataset(dataset, config)
        Pretrainer(model, config).pretrain(dataset.train_trajectories(), epochs=1)
        estimator = TravelTimeEstimator(model, config)
        estimator.fit(dataset.train_trajectories(), epochs=2)
        predictions = estimator.predict(dataset.test_trajectories()[:8])
        assert np.isfinite(predictions).all()
