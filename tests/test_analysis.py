"""Fixture suite for `repro.analysis`: every rule, three ways.

Each rule family ships a trio of snippets — violating (the rule fires),
suppressed (the same violation under `# repro: allow[...]` yields nothing),
and clean (idiomatic code yields nothing) — plus path-scoping checks, the
baseline machinery, the CLI gate, and a hypothesis property that the
analyzer never crashes on arbitrary syntactically-valid sources (mutated
from the real tree).

The lock-discipline rule is additionally pinned to the pre-PR-6 _LRUCache:
the verbatim thread-unsafe cache that PR 6 had to fix after a hammer test
caught it.  The analyzer must catch that shape statically.
"""

from __future__ import annotations

import ast
import json
import textwrap
from dataclasses import dataclass
from pathlib import Path

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    AnalysisConfig,
    Baseline,
    Finding,
    analyze_source,
    available_rules,
    rule_families,
    run_analysis,
)
from repro.analysis.cli import main as cli_main

REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def findings_for(source: str, rel_path: str, rule: str | None = None) -> list[Finding]:
    found = analyze_source(textwrap.dedent(source), rel_path)
    if rule is None:
        return found
    return [f for f in found if f.rule == rule]


# --------------------------------------------------------------------- #
# Rule fixtures: violating / suppressed / clean
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RuleCase:
    rule: str
    rel_path: str
    bad: str
    suppressed: str
    clean: str


RULE_CASES = [
    RuleCase(
        rule="race-unguarded-write",
        rel_path="server/fixture.py",
        bad="""
            import threading

            class Runtime:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def locked_inc(self):
                    with self._lock:
                        self._count += 1

                def unlocked_inc(self):
                    self._count += 1
            """,
        suppressed="""
            import threading

            class Runtime:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def locked_inc(self):
                    with self._lock:
                        self._count += 1

                def unlocked_inc(self):
                    self._count += 1  # repro: allow[race-unguarded-write]
            """,
        clean="""
            import threading

            class Runtime:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def locked_inc(self):
                    with self._lock:
                        self._count += 1

                def other_inc_locked(self):
                    self._count += 1
            """,
    ),
    RuleCase(
        rule="race-lockless-class",
        rel_path="streaming/fixture.py",
        bad="""
            class Counter:
                def __init__(self):
                    self.total = 0

                def bump(self):
                    self.total += 1
            """,
        suppressed="""
            class Counter:  # repro: allow[race-lockless-class]
                def __init__(self):
                    self.total = 0

                def bump(self):
                    self.total += 1
            """,
        clean="""
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def bump(self):
                    with self._lock:
                        self.total += 1
            """,
    ),
    RuleCase(
        rule="det-wallclock",
        rel_path="eval/fixture.py",
        bad="""
            import time

            def stamp(record):
                record["at"] = time.time()
                return record
            """,
        suppressed="""
            import time

            def stamp(record):
                record["at"] = time.time()  # repro: allow[det-wallclock]
                return record
            """,
        clean="""
            def stamp(record, clock):
                record["at"] = clock.monotonic()
                return record
            """,
    ),
    RuleCase(
        rule="det-global-rng",
        rel_path="core/fixture.py",
        bad="""
            import random
            import numpy as np

            def sample(items):
                rng = np.random.default_rng()
                return random.choice(items), rng.random()
            """,
        suppressed="""
            import random
            import numpy as np

            def sample(items):
                rng = np.random.default_rng()  # repro: allow[det-global-rng]
                return items[0], rng.random()
            """,
        clean="""
            import numpy as np

            def sample(items, rng: np.random.Generator):
                seeded = np.random.default_rng(1234)
                return items[int(rng.integers(len(items)))], seeded.random()
            """,
    ),
    RuleCase(
        rule="det-env-iteration",
        rel_path="experiments/fixture.py",
        bad="""
            import os

            def manifest(root, rows):
                names = [name for name in os.listdir(root)]
                unique = {int(r) for r in rows}
                out = []
                out.extend(unique)
                return names, out
            """,
        suppressed="""
            import os

            def manifest(root, rows):
                names = [name for name in os.listdir(root)]  # repro: allow[det-env-iteration]
                unique = {int(r) for r in rows}
                out = []
                out.extend(unique)  # repro: allow[det]
                return names, out
            """,
        clean="""
            import os

            def manifest(root, rows):
                names = sorted(os.listdir(root))
                unique = {int(r) for r in rows}
                out = []
                out.extend(sorted(unique))
                return names, out
            """,
    ),
    RuleCase(
        rule="dtype-untyped-alloc",
        rel_path="nn/kernels.py",
        bad="""
            import numpy as np

            def scratch(n):
                return np.zeros((n, 4))
            """,
        suppressed="""
            import numpy as np

            def scratch(n):
                return np.zeros((n, 4))  # repro: allow[dtype-untyped-alloc]
            """,
        clean="""
            import numpy as np

            def scratch(n):
                return np.zeros((n, 4), dtype=np.float32)
            """,
    ),
    RuleCase(
        rule="dtype-float64-cast",
        rel_path="serving/fixture.py",
        bad="""
            import numpy as np

            def widen(x):
                return x.astype(np.float64) + np.ones(3, dtype=np.float64)
            """,
        suppressed="""
            import numpy as np

            def widen(x):
                return x.astype(np.float64) + np.ones(3, dtype=np.float64)  # repro: allow[dtype]
            """,
        clean="""
            import numpy as np

            def widen(x):
                return x.astype(np.float32) + np.ones(3, dtype=np.float32)
            """,
    ),
    RuleCase(
        rule="dtype-float-literal",
        rel_path="ann/fixture.py",
        bad="""
            import numpy as np

            def halve(x):
                return np.sum(x, axis=1) * 0.5
            """,
        suppressed="""
            import numpy as np

            def halve(x):
                return np.sum(x, axis=1) * 0.5  # repro: allow[dtype-float-literal]
            """,
        clean="""
            import numpy as np

            def halve(x):
                return np.float32(0.5) * np.sum(x, axis=1)
            """,
    ),
    RuleCase(
        rule="layer-direct-construction",
        rel_path="eval/fixture.py",
        bad="""
            from repro.streaming.shards import ShardedIndex

            def build_index():
                return ShardedIndex(shard_capacity=4)
            """,
        suppressed="""
            from repro.streaming.shards import ShardedIndex

            def build_index():
                return ShardedIndex(shard_capacity=4)  # repro: allow[layer-direct-construction]
            """,
        clean="""
            from repro.api import Engine, EngineConfig

            def build_index(encoder):
                return Engine(encoder, EngineConfig(backend="sharded", shard_capacity=4))
            """,
    ),
    RuleCase(
        rule="layer-mutable-api-type",
        rel_path="api/types.py",
        bad="""
            from dataclasses import dataclass

            @dataclass
            class Request:
                k: int = 5
            """,
        suppressed="""
            from dataclasses import dataclass

            @dataclass
            class Request:  # repro: allow[layer-mutable-api-type]
                k: int = 5
            """,
        clean="""
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Request:
                k: int = 5
            """,
    ),
]


@pytest.mark.parametrize("case", RULE_CASES, ids=lambda c: c.rule)
def test_rule_detects_violation(case: RuleCase):
    found = findings_for(case.bad, case.rel_path, case.rule)
    assert found, f"{case.rule} did not fire on its violating fixture"
    for finding in found:
        assert finding.rule == case.rule
        assert finding.path == case.rel_path
        assert finding.line >= 1


@pytest.mark.parametrize("case", RULE_CASES, ids=lambda c: c.rule)
def test_rule_respects_inline_allow(case: RuleCase):
    assert findings_for(case.suppressed, case.rel_path, case.rule) == []


@pytest.mark.parametrize("case", RULE_CASES, ids=lambda c: c.rule)
def test_rule_passes_clean_code(case: RuleCase):
    assert findings_for(case.clean, case.rel_path) == []


def test_allow_on_violating_line_yields_zero_findings_end_to_end(tmp_path):
    """The acceptance end-to-end: a known-violating line + allow -> nothing."""
    module = tmp_path / "repro" / "eval" / "stamped.py"
    module.parent.mkdir(parents=True)
    module.write_text(
        "import time\n\n\ndef stamp():\n"
        "    return time.time()  # repro: allow[det-wallclock]\n"
    )
    result = run_analysis([tmp_path / "repro"])
    assert result.findings == []
    assert [f.rule for f in result.suppressed] == ["det-wallclock"]


# --------------------------------------------------------------------- #
# The pre-PR-6 _LRUCache: the bug this rule family exists for
# --------------------------------------------------------------------- #
#: Verbatim shape of the cache before PR 6 added its lock (git f42989f):
#: `get` mutates the miss/hit counters and the LRU order with no lock, from
#: every query worker at once.
PRE_PR6_LRU_CACHE = """
from collections import OrderedDict


class _LRUCache:
    def __init__(self, capacity):
        self.capacity = int(capacity)
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._entries)

    def get(self, key):
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key, value):
        if self.capacity < 1:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
"""


def test_lock_rule_catches_pre_pr6_lru_cache():
    found = findings_for(PRE_PR6_LRU_CACHE, "streaming/service.py", "race-lockless-class")
    assert len(found) == 1
    assert "_LRUCache" in found[0].message
    # The current, locked implementation passes the same rule.  (The module
    # still carries a baselined finding for the deprecated IngestService, so
    # filter to the cache class.)
    current = (REPO_SRC / "streaming" / "service.py").read_text()
    cache_findings = [
        f
        for f in findings_for(current, "streaming/service.py", "race-lockless-class")
        if "_LRUCache" in f.message
    ]
    assert cache_findings == []


def test_obs_paths_are_race_linted_and_the_real_registry_is_clean():
    # PR 9 widened thread_paths to obs/: a lockless counter there is a finding.
    unlocked_counter = """
        class Counter:
            def __init__(self):
                self.value = 0.0

            def inc(self, amount=1.0):
                self.value += amount
        """
    found = findings_for(unlocked_counter, "obs/fixture.py", "race-lockless-class")
    assert len(found) == 1
    # The shipped registry holds its lock around every mutation, so the same
    # rule that flags the fixture passes the real source.
    current = (REPO_SRC / "obs" / "metrics.py").read_text()
    assert findings_for(current, "obs/metrics.py", "race-lockless-class") == []
    assert findings_for(current, "obs/metrics.py", "race-unguarded-write") == []


def test_shared_marker_extends_race_scope_beyond_thread_paths():
    source = PRE_PR6_LRU_CACHE.replace(
        "class _LRUCache:", "class _LRUCache:  # thread: shared"
    )
    # Outside server//streaming/ the plain class is ignored ...
    assert findings_for(PRE_PR6_LRU_CACHE, "utils/fixture.py", "race-lockless-class") == []
    # ... but the `# thread: shared` marker opts it in anywhere.
    assert len(findings_for(source, "utils/fixture.py", "race-lockless-class")) == 1


# --------------------------------------------------------------------- #
# Scoping and machinery
# --------------------------------------------------------------------- #
def test_dtype_rules_only_apply_to_hot_paths():
    source = "import numpy as np\nx = np.zeros((3, 3))\n"
    assert findings_for(source, "ann/fixture.py", "dtype-untyped-alloc")
    assert findings_for(source, "experiments/fixture.py") == []


def test_wallclock_rule_exempts_clock_module():
    source = "import time\n\n\ndef now():\n    return time.monotonic()\n"
    assert findings_for(source, "utils/clock.py") == []
    assert findings_for(source, "server/fixture.py", "det-wallclock")


def test_layering_rule_allows_defining_layers():
    source = "from repro.streaming.shards import ShardedIndex\nindex = ShardedIndex()\n"
    assert findings_for(source, "streaming/service.py") == []
    assert findings_for(source, "experiments/fixture.py", "layer-direct-construction")


def test_locked_suffix_convention_counts_as_guarded():
    source = """
        import threading

        class Publisher:
            def __init__(self):
                self._lock = threading.Lock()
                self._generation = 0

            def publish(self):
                with self._lock:
                    self._publish_locked()

            def _publish_locked(self):
                self._generation += 1
        """
    assert findings_for(source, "server/fixture.py") == []


def test_family_and_all_tokens_suppress():
    base = "import time\n\n\ndef f():\n    return time.time(){}\n"
    for token in ("det", "all", "det-wallclock"):
        source = base.format(f"  # repro: allow[{token}]")
        assert findings_for(source, "core/fixture.py") == []
    assert findings_for(base.format("  # repro: allow[dtype]"), "core/fixture.py")


def test_parse_error_becomes_finding_not_crash():
    found = analyze_source("def broken(:\n", "core/fixture.py")
    assert [f.rule for f in found] == ["parse-error"]


def test_rule_registry_covers_four_families():
    families = rule_families()
    assert set(families) == {"race", "det", "dtype", "layer"}
    assert sum(len(ids) for ids in families.values()) == len(available_rules())
    for rule_id, cls in available_rules().items():
        assert cls.rule_id == rule_id
        assert cls.description


# --------------------------------------------------------------------- #
# Baseline machinery
# --------------------------------------------------------------------- #
def _write_tree(tmp_path: Path, rel: str, source: str) -> Path:
    module = tmp_path / "repro" / rel
    module.parent.mkdir(parents=True, exist_ok=True)
    module.write_text(textwrap.dedent(source))
    return tmp_path / "repro"


def test_baseline_grandfathers_and_reports_stale(tmp_path):
    root = _write_tree(
        tmp_path,
        "eval/fixture.py",
        """
        import time

        def stamp():
            return time.time()
        """,
    )
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {
                        "rule": "det-wallclock",
                        "path": "eval/fixture.py",
                        "match": "time.time",
                        "reason": "fixture: deliberately grandfathered",
                    },
                    {
                        "rule": "dtype-untyped-alloc",
                        "path": "ann/gone.py",
                        "match": "",
                        "reason": "fixture: stale entry",
                    },
                ],
            }
        )
    )
    result = run_analysis([root], baseline=Baseline.load(baseline_path))
    assert result.findings == []
    assert [f.rule for f in result.baselined] == ["det-wallclock"]
    assert [e.path for e in result.stale_baseline] == ["ann/gone.py"]


def test_baseline_entries_require_reasons(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {"rule": "det-wallclock", "path": "eval/x.py", "match": "", "reason": ""}
                ],
            }
        )
    )
    with pytest.raises(ValueError, match="no reason"):
        Baseline.load(path)


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
def test_cli_gate_fails_then_passes_with_baseline(tmp_path, capsys):
    root = _write_tree(
        tmp_path,
        "eval/fixture.py",
        """
        import time

        def stamp():
            return time.time()
        """,
    )
    artifact = tmp_path / "analysis.json"
    code = cli_main([str(root), "--no-baseline", "--format", "json", "--output", str(artifact)])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["summary"]["new"] == 1
    assert json.loads(artifact.read_text()) == payload

    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {
                        "rule": "det-wallclock",
                        "path": "eval/fixture.py",
                        "match": "time.time",
                        "reason": "fixture: grandfathered",
                    }
                ],
            }
        )
    )
    assert cli_main([str(root), "--baseline", str(baseline_path)]) == 0
    out = capsys.readouterr().out
    assert "0 new finding(s), 1 baselined" in out


def test_cli_rule_selection_and_listing(tmp_path, capsys):
    root = _write_tree(
        tmp_path,
        "eval/fixture.py",
        """
        import time

        def stamp():
            return time.time()
        """,
    )
    assert cli_main([str(root), "--no-baseline", "--rules", "dtype,layer"]) == 0
    capsys.readouterr()
    assert cli_main([str(root), "--no-baseline", "--rules", "det"]) == 1
    capsys.readouterr()
    assert cli_main([str(root), "--no-baseline", "--rules", "no-such-rule"]) == 2
    capsys.readouterr()
    assert cli_main(["--list-rules"]) == 0
    listing = capsys.readouterr().out
    for rule_id in available_rules():
        assert rule_id in listing


# --------------------------------------------------------------------- #
# Robustness: the analyzer never crashes on valid Python
# --------------------------------------------------------------------- #
SOURCE_FILES = sorted((REPO_SRC).rglob("*.py"))
REL_PATHS = (
    "server/fixture.py",
    "streaming/fixture.py",
    "nn/kernels.py",
    "ann/fixture.py",
    "api/types.py",
    "eval/fixture.py",
    "utils/clock.py",
    "obs/metrics.py",
)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_analyzer_never_crashes_on_mutated_sources(data):
    """Property: any syntactically-valid mutation of real sources analyzes.

    Mutations (line deletion, duplication, swap, truncation) produce gnarly
    but parseable Python — half-moved statements, orphaned else-branches,
    decorators on the wrong thing.  The analyzer must return findings, not
    raise, for every module path scoping it can encounter.
    """
    path = data.draw(st.sampled_from(SOURCE_FILES))
    lines = path.read_text(encoding="utf-8").splitlines()
    for _ in range(data.draw(st.integers(min_value=0, max_value=3))):
        if not lines:
            break
        op = data.draw(st.sampled_from(["delete", "duplicate", "swap", "truncate"]))
        i = data.draw(st.integers(min_value=0, max_value=len(lines) - 1))
        if op == "delete":
            del lines[i]
        elif op == "duplicate":
            lines.insert(i, lines[i])
        elif op == "swap":
            j = data.draw(st.integers(min_value=0, max_value=len(lines) - 1))
            lines[i], lines[j] = lines[j], lines[i]
        else:
            del lines[i:]
    source = "\n".join(lines)
    try:
        ast.parse(source)
    except (SyntaxError, ValueError, RecursionError):
        assume(False)
    rel_path = data.draw(st.sampled_from(REL_PATHS))
    findings = analyze_source(source, rel_path)
    assert all(isinstance(f, Finding) for f in findings)
    assert findings == sorted(findings)
