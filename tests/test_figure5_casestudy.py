"""Smoke test for the Figure 5 case-study runner (top-3 similar trajectories)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import tiny_config
from repro.experiments import (
    Figure5Settings,
    format_figure5,
    run_figure5,
    summarize_figure5,
)


def test_figure5_case_study_structure():
    settings = Figure5Settings(
        scale=0.3, pretrain_epochs=1, num_queries=2, database_size=30, top_k=3,
        config=tiny_config(batch_size=16),
    )
    rows = run_figure5("synthetic-porto", settings)
    # Two models x two queries x top-3 retrieved.
    assert len(rows) == 2 * 2 * 3
    assert {row["Model"] for row in rows} == {"START", "Trembr"}
    for row in rows:
        assert 1 <= row["Rank"] <= 3
        assert 0.0 <= row["Road Jaccard"] <= 1.0
        assert row["OD distance (m)"] >= 0.0
    summary = summarize_figure5(rows)
    assert set(summary) == {"START", "Trembr"}
    assert all(np.isfinite(v) for v in summary.values())
    assert "Figure 5" in format_figure5(rows)


def test_figure5_requires_enough_data():
    settings = Figure5Settings(
        scale=0.3, pretrain_epochs=1, num_queries=5, database_size=10_000,
        config=tiny_config(batch_size=16),
    )
    with pytest.raises(RuntimeError):
        run_figure5("synthetic-porto", settings)
