"""Integration tests: downstream task runners driving START and baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import build_baseline
from repro.core import Pretrainer, STARTModel, tiny_config
from repro.eval import (
    TaskSettings,
    evaluate_classical_search,
    evaluate_representation_knearest,
    evaluate_representation_search,
    number_of_classes,
    run_classification_task,
    run_similarity_task,
    run_travel_time_task,
)
from repro.roadnet import CityConfig, generate_city
from repro.trajectory import (
    CongestionModel,
    DemandConfig,
    DetourConfig,
    TrajectoryDataset,
    TrajectoryGenerator,
    build_similarity_benchmark,
    make_detour,
)
from repro.utils.seeding import get_rng


@pytest.fixture(scope="module")
def dataset():
    network = generate_city(CityConfig(grid_rows=6, grid_cols=6, seed=3))
    config = DemandConfig(num_drivers=8, num_days=10, trips_per_driver_per_day=2.5, seed=3)
    generator = TrajectoryGenerator(network, CongestionModel(network), config)
    result = generator.generate(num_trajectories=150)
    ds = TrajectoryDataset(network, result.trajectories, name="eval-test")
    ds.chronological_split()
    return ds


@pytest.fixture(scope="module")
def pretrained_start(dataset):
    config = tiny_config(pretrain_epochs=1, batch_size=16)
    model = STARTModel.from_dataset(dataset, config)
    Pretrainer(model, config).pretrain(dataset.train_trajectories(), epochs=1)
    return model, config


class TestTaskRunners:
    def test_travel_time_task_report(self, dataset, pretrained_start):
        model, config = pretrained_start
        report = run_travel_time_task(model, dataset, config, TaskSettings(finetune_epochs=2))
        assert set(report) == {"MAE", "MAPE", "RMSE"}
        assert report["MAE"] > 0
        assert report["RMSE"] >= report["MAE"]

    def test_classification_task_binary(self, dataset, pretrained_start):
        model, config = pretrained_start
        report = run_classification_task(
            model, dataset, config, label_kind="occupied", num_classes=2,
            settings=TaskSettings(finetune_epochs=2),
        )
        assert set(report) == {"ACC", "F1", "AUC"}
        assert 0.0 <= report["ACC"] <= 1.0

    def test_classification_task_multiclass(self, dataset, pretrained_start):
        model, config = pretrained_start
        classes = number_of_classes(dataset, "driver")
        report = run_classification_task(
            model, dataset, config, label_kind="driver", num_classes=classes,
            settings=TaskSettings(finetune_epochs=1, classification_k=2),
        )
        assert set(report) == {"Micro-F1", "Macro-F1", "Recall@2"}

    def test_similarity_task(self, dataset, pretrained_start):
        model, _ = pretrained_start
        report = run_similarity_task(model, dataset, TaskSettings(num_queries=6, num_negatives=15))
        assert set(report) == {"MR", "HR@1", "HR@5"}
        assert report["MR"] >= 1.0

    def test_number_of_classes(self, dataset):
        assert number_of_classes(dataset, "occupied") == 2
        assert number_of_classes(dataset, "driver") >= 2
        assert number_of_classes(dataset, "mode") == 4
        with pytest.raises(ValueError):
            number_of_classes(dataset, "weather")

    def test_task_runners_accept_baselines(self, dataset):
        config = tiny_config(pretrain_epochs=1, batch_size=16)
        model = build_baseline("Trembr", dataset.network, config)
        model.pretrain(dataset.train_trajectories()[:32], epochs=1)
        report = run_travel_time_task(
            model, dataset, config, TaskSettings(finetune_epochs=1),
            train_trajectories=dataset.train_trajectories()[:32],
            test_trajectories=dataset.test_trajectories()[:16],
        )
        assert np.isfinite(report["MAE"])


class TestSimilaritySearchIntegration:
    def test_representation_vs_classical_on_same_benchmark(self, dataset, pretrained_start):
        model, _ = pretrained_start
        benchmark = build_similarity_benchmark(
            dataset.network, dataset.test_trajectories(), num_queries=6, num_negatives=12, rng=get_rng(1)
        )
        deep_report = evaluate_representation_search(model.encode, benchmark)
        classical_report = evaluate_classical_search(dataset.network, "DTW", benchmark)
        for report in (deep_report, classical_report):
            assert set(report) == {"MR", "HR@1", "HR@5"}
            assert 1.0 <= report["MR"] <= len(benchmark.database)

    def test_knearest_precision_bounded_for_both_detour_sizes(self, dataset, pretrained_start):
        model, _ = pretrained_start
        rng = get_rng(2)
        pool = dataset.test_trajectories()
        database = pool[:40]
        queries, small_detours, large_detours = [], [], []
        for trajectory in pool:
            small = make_detour(dataset.network, trajectory, DetourConfig(selection_proportion=0.2), rng=rng)
            large = make_detour(dataset.network, trajectory, DetourConfig(selection_proportion=0.6), rng=rng)
            if small is not None and large is not None:
                queries.append(trajectory)
                small_detours.append(small)
                large_detours.append(large)
            if len(queries) >= 8:
                break
        assert len(queries) >= 4
        small_precision = evaluate_representation_knearest(model.encode, queries, small_detours, database, k=5)
        large_precision = evaluate_representation_knearest(model.encode, queries, large_detours, database, k=5)
        # The monotone trend (precision drops as detours grow) is a population
        # statement verified at scale by the Figure 4 benchmark; here we only
        # check both evaluations are well-formed.
        assert 0.0 <= small_precision <= 1.0
        assert 0.0 <= large_precision <= 1.0
