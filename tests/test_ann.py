"""Unit + property tests for `repro.ann`: k-means, PQ, IVF, IVF-PQ.

The two hypothesis properties pin the ANN backends' sharp guarantees:

* **exhaustive probing is the oracle** — with ``nprobe >= nlist`` both ANN
  backends return ids *and distances* bit-identical to the bruteforce
  backend, for any corpus/geometry (the scan degenerates to the oracle's own
  full-matrix arithmetic by construction);
* **recall is monotone in nprobe** — per query, probed lists are a prefix of
  the same coarse-distance ordering, so growing ``nprobe`` grows the
  candidate set and exact re-ranking can only keep or improve recall@k.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann import IVFBackend, IVFPQBackend, ProductQuantizer, assign_to_centroids, kmeans
from repro.ann.pq import largest_divisor_at_most
from repro.api import create_backend


def random_corpus(seed: int, rows: int, dim: int) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((rows, dim)).astype(np.float32)


def recall_against(oracle_ids: np.ndarray, candidate_ids: np.ndarray) -> float:
    """Mean per-query overlap fraction with the oracle's neighbour set."""
    assert oracle_ids.shape == candidate_ids.shape
    if oracle_ids.shape[1] == 0:
        return 1.0
    hits = [
        len(set(map(int, oracle_ids[row])) & set(map(int, candidate_ids[row])))
        for row in range(oracle_ids.shape[0])
    ]
    return float(np.mean(hits)) / oracle_ids.shape[1]


class TestKMeans:
    def test_deterministic_given_seed(self):
        data = random_corpus(1, 200, 8)
        a = kmeans(data, 16, seed=5)
        b = kmeans(data, 16, seed=5)
        np.testing.assert_array_equal(a, b)
        c = kmeans(data, 16, seed=6)
        assert not np.array_equal(a, c)

    def test_shapes_and_validation(self):
        data = random_corpus(2, 50, 4)
        centroids = kmeans(data, 7, seed=0)
        assert centroids.shape == (7, 4)
        assert centroids.dtype == np.float32
        with pytest.raises(ValueError, match="k must be"):
            kmeans(data, 0)
        with pytest.raises(ValueError, match="k must be"):
            kmeans(data, 51)

    def test_k_equals_n_with_duplicates_yields_finite_centroids(self):
        """Empty-cluster repair must never divide by zero (k == n forces
        empties when rows are duplicated)."""
        data = random_corpus(3, 20, 3)
        data[5] = data[2]
        data[11] = data[2]
        centroids = kmeans(data, 20, seed=0)
        assert np.isfinite(centroids).all()

    def test_assignment_reduces_inertia(self):
        data = random_corpus(4, 300, 6)
        _, d_one = assign_to_centroids(data, kmeans(data, 1, seed=0))
        _, d_many = assign_to_centroids(data, kmeans(data, 12, seed=0))
        assert d_many.sum() < d_one.sum()

    def test_clustered_data_recovers_clusters(self):
        rng = np.random.default_rng(5)
        centers = rng.standard_normal((4, 5)).astype(np.float32) * 20
        data = np.concatenate(
            [center + rng.standard_normal((40, 5)).astype(np.float32) for center in centers]
        )
        assignments, _ = assign_to_centroids(data, kmeans(data, 4, seed=0))
        # Every ground-truth blob lands in exactly one learned cluster.
        for blob in range(4):
            assert len(set(assignments[blob * 40 : (blob + 1) * 40].tolist())) == 1


class TestProductQuantizer:
    def test_m_clamps_to_a_divisor(self):
        assert largest_divisor_at_most(12, 8) == 6
        assert largest_divisor_at_most(7, 4) == 1
        pq = ProductQuantizer(dim=10, m=4, bits=4)
        assert pq.m == 2 and pq.subdim == 5

    def test_encode_decode_reduces_error_with_bits(self):
        data = random_corpus(6, 400, 8)
        errors = []
        for bits in (2, 6):
            pq = ProductQuantizer(dim=8, m=4, bits=bits, seed=0).train(data)
            reconstructed = pq.decode(pq.encode(data))
            errors.append(float(((data - reconstructed) ** 2).sum()))
        assert errors[1] < errors[0]

    def test_adc_matches_decoded_distances(self):
        """ADC table sums must equal squared distances to decoded vectors."""
        data = random_corpus(7, 300, 8)
        queries = random_corpus(8, 5, 8)
        pq = ProductQuantizer(dim=8, m=4, bits=5, seed=0).train(data)
        codes = pq.encode(data)
        approx = pq.adc(pq.lookup_tables(queries), codes)
        decoded = pq.decode(codes)
        explicit = ((queries[:, None, :] - decoded[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(approx, explicit, rtol=1e-4, atol=1e-4)

    def test_untrained_raises(self):
        pq = ProductQuantizer(dim=8, m=4, bits=4)
        with pytest.raises(RuntimeError, match="untrained"):
            pq.encode(random_corpus(9, 3, 8))


class TestIVFSpecifics:
    def test_params_validated(self):
        for bad in (dict(nlist=0), dict(nprobe=0), dict(train_size=0)):
            with pytest.raises(ValueError):
                IVFBackend(**bad)
        for bad in (dict(pq_m=0), dict(rerank=0), dict(pq_bits=0)):
            with pytest.raises(ValueError):
                IVFPQBackend(**bad)
        with pytest.raises(TypeError):
            create_backend("sharded", nlist=4)  # knobs don't leak across backends

    def test_backend_params_reach_the_factory(self):
        backend = create_backend("ivf", nlist=5, nprobe=2, train_size=100, seed=9)
        assert (backend.nlist, backend.nprobe, backend.train_size, backend.seed) == (5, 2, 100, 9)
        pq = create_backend("ivfpq", pq_m=2, pq_bits=3, rerank=7)
        assert (pq.pq_m, pq.pq_bits, pq.rerank) == (2, 3, 7)

    def test_centroids_cached_across_appends_once_train_size_reached(self):
        backend = IVFBackend(nlist=4, nprobe=2, train_size=32, seed=0)
        backend.add(random_corpus(10, 40, 4))
        backend.top_k(random_corpus(11, 2, 4), 3)  # builds the structure
        first_cache = backend._centroid_cache
        assert first_cache is not None
        backend.add(random_corpus(12, 10, 4))  # prefix of 32 train rows unchanged
        backend.top_k(random_corpus(11, 2, 4), 3)
        assert backend._centroid_cache is first_cache  # no re-train
        backend.remove(np.arange(5))
        backend.compact()
        assert backend._centroid_cache is None  # compaction rewrites the prefix

    def test_probing_expands_until_k_alive_candidates(self):
        """nprobe=1 with k near the corpus size must still fill k columns."""
        corpus = random_corpus(13, 30, 4)
        backend = IVFBackend(nlist=10, nprobe=1, seed=0)
        backend.add(corpus)
        result = backend.top_k(random_corpus(14, 3, 4), 25)
        assert result.indices.shape == (3, 25)
        assert np.isfinite(result.distances).all()
        assert (result.indices >= 0).all()

    def test_high_nprobe_beats_low_nprobe_on_clustered_data(self):
        rng = np.random.default_rng(15)
        centers = rng.standard_normal((8, 6)).astype(np.float32) * 10
        corpus = np.concatenate(
            [center + rng.standard_normal((50, 6)).astype(np.float32) for center in centers]
        )
        queries = corpus[::37] + 0.01 * rng.standard_normal((11, 6)).astype(np.float32)
        oracle = create_backend("bruteforce")
        oracle.add(corpus)
        truth = oracle.top_k(queries, 10).indices
        recalls = []
        for nprobe in (1, 4):
            backend = create_backend("ivf", nlist=8, nprobe=nprobe, seed=0)
            backend.add(corpus)
            recalls.append(recall_against(truth, backend.top_k(queries, 10).indices))
        assert recalls[1] >= recalls[0]
        assert recalls[1] >= 0.9  # clustered data: 4/8 lists is nearly exact

    def test_ivfpq_rerank_pool_covering_probed_candidates_is_exact_on_them(self):
        """With rerank >= corpus the ADC stage only orders candidates; the
        returned ids of probed rows carry their true distances."""
        corpus = random_corpus(16, 64, 8)
        backend = IVFPQBackend(nlist=8, nprobe=8, pq_m=4, pq_bits=4, rerank=64, seed=0)
        backend.add(corpus)
        oracle = create_backend("bruteforce")
        oracle.add(corpus)
        queries = random_corpus(17, 6, 8)
        # nprobe == nlist -> bit-identical oracle path even through PQ backend.
        result = backend.top_k(queries, 7)
        expected = oracle.top_k(queries, 7)
        np.testing.assert_array_equal(result.indices, expected.indices)
        assert (result.distances == expected.distances).all()


class TestHypothesisProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        rows=st.integers(1, 90),
        num_queries=st.integers(1, 8),
        dim=st.integers(2, 8),
        nlist=st.integers(1, 12),
        k=st.integers(1, 12),
        backend_name=st.sampled_from(["ivf", "ivfpq"]),
    )
    def test_exhaustive_probing_is_bit_identical_to_bruteforce(
        self, seed, rows, num_queries, dim, nlist, k, backend_name
    ):
        """nprobe >= nlist  ==>  ids and distances match the oracle bitwise,
        and ranks_of agrees exactly, for any corpus/geometry."""
        rng = np.random.default_rng(seed)
        corpus = rng.standard_normal((rows, dim)).astype(np.float32)
        queries = rng.standard_normal((num_queries, dim)).astype(np.float32)
        oracle = create_backend("bruteforce")
        oracle.add(corpus)
        backend = create_backend(
            backend_name, nlist=nlist, nprobe=nlist, seed=seed % 97, train_size=max(1, rows // 2)
        )
        backend.add(corpus)
        expected = oracle.top_k(queries, k)
        result = backend.top_k(queries, k)
        np.testing.assert_array_equal(result.indices, expected.indices)
        assert (result.distances == expected.distances).all()  # bitwise, not allclose
        truth = rng.integers(0, rows, size=num_queries)
        np.testing.assert_array_equal(
            backend.ranks_of(queries, truth), oracle.ranks_of(queries, truth)
        )

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        rows=st.integers(8, 80),
        num_queries=st.integers(1, 6),
        dim=st.integers(2, 6),
        nlist=st.integers(2, 8),
        k=st.integers(1, 6),
    )
    def test_ivf_recall_is_monotone_in_nprobe(self, seed, rows, num_queries, dim, nlist, k):
        """Probed lists are a per-query prefix of one fixed coarse ordering,
        so recall@k never decreases as nprobe grows — ending at 1.0 when
        nprobe == nlist (the oracle path)."""
        rng = np.random.default_rng(seed)
        corpus = rng.standard_normal((rows, dim)).astype(np.float32)
        queries = rng.standard_normal((num_queries, dim)).astype(np.float32)
        oracle = create_backend("bruteforce")
        oracle.add(corpus)
        truth = oracle.top_k(queries, k).indices
        recalls = []
        for nprobe in range(1, nlist + 1):
            backend = create_backend("ivf", nlist=nlist, nprobe=nprobe, seed=seed % 89)
            backend.add(corpus)
            recalls.append(recall_against(truth, backend.top_k(queries, k).indices))
        assert all(b >= a - 1e-12 for a, b in zip(recalls, recalls[1:])), recalls
        assert recalls[-1] == 1.0
