"""Unit and property-based tests for the autodiff tensor engine.

Gradients of every differentiable op are compared against central finite
differences — this is what ties the NumPy substrate to ground truth in place
of PyTorch's battle-tested autograd.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import (
    Tensor,
    concatenate,
    embedding_lookup,
    masked_fill,
    no_grad,
    stack,
    unbroadcast,
    where,
)


def numeric_grad(func, array: np.ndarray, eps: float = 1e-4) -> np.ndarray:
    """Central finite-difference gradient of a scalar-valued ``func``."""
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func(array)
        flat[i] = original - eps
        minus = func(array)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build_loss, shape, rtol=1e-2, atol=1e-3, seed=0):
    """Compare autodiff gradient vs finite differences for one input tensor."""
    rng = np.random.default_rng(seed)
    array = rng.standard_normal(shape).astype(np.float64)

    tensor = Tensor(array.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()
    analytic = tensor.grad.astype(np.float64)

    numeric = numeric_grad(lambda a: float(build_loss(Tensor(a)).data), array)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


class TestBasicOps:
    def test_add_forward(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        np.testing.assert_allclose((a + b).data, [4.0, 6.0])

    def test_add_broadcast_grad(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((4,)), requires_grad=True)
        out = (a + b).sum()
        out.backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, 3.0 * np.ones(4))

    def test_mul_grad(self):
        check_gradient(lambda t: (t * t * 3.0).sum(), (4, 3))

    def test_div_grad(self):
        check_gradient(lambda t: (t / 2.5 + 1.0 / (t + 10.0)).sum(), (5,))

    def test_sub_and_neg(self):
        check_gradient(lambda t: (-(t - 2.0) * 0.5).sum(), (3, 2))

    def test_pow_grad(self):
        check_gradient(lambda t: ((t * t) ** 1.5).sum(), (4,), seed=3)

    def test_rsub_rdiv(self):
        a = Tensor([2.0, 4.0])
        np.testing.assert_allclose((1.0 - a).data, [-1.0, -3.0])
        np.testing.assert_allclose((8.0 / a).data, [4.0, 2.0])

    def test_matmul_2d_grad(self):
        rng = np.random.default_rng(0)
        b_fixed = rng.standard_normal((3, 2)).astype(np.float32)

        def loss(t):
            return (t @ Tensor(b_fixed)).sum()

        check_gradient(loss, (4, 3))

    def test_matmul_batched_grad(self):
        rng = np.random.default_rng(1)
        other = Tensor(rng.standard_normal((2, 4, 3)).astype(np.float32))
        check_gradient(lambda t: (t @ other).sum(), (2, 5, 4))

    def test_matmul_vector(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
        v = Tensor(np.array([1.0, 2.0, 3.0], dtype=np.float32), requires_grad=True)
        out = (a @ v).sum()
        out.backward()
        assert a.grad.shape == (2, 3)
        assert v.grad.shape == (3,)


class TestElementwise:
    @pytest.mark.parametrize(
        "name",
        ["exp", "tanh", "sigmoid", "relu", "leaky_relu", "elu", "gelu", "abs", "sqrt"],
    )
    def test_unary_gradients(self, name):
        def loss(t):
            if name == "sqrt":
                t = t * t + 1.0  # keep strictly positive
            return getattr(t, name)().sum()

        check_gradient(loss, (4, 3), seed=7)

    def test_log_grad(self):
        check_gradient(lambda t: ((t * t) + 0.5).log().sum(), (5,))

    def test_clip(self):
        t = Tensor(np.array([-2.0, 0.5, 3.0], dtype=np.float32), requires_grad=True)
        out = t.clip(-1.0, 1.0).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])


class TestReductionsAndShapes:
    def test_sum_axis_grad(self):
        check_gradient(lambda t: (t.sum(axis=1) ** 2).sum(), (3, 4))

    def test_mean_grad(self):
        check_gradient(lambda t: (t.mean(axis=0) * 3.0).sum(), (6, 2))

    def test_max_grad(self):
        t = Tensor(np.array([[1.0, 5.0], [7.0, 2.0]], dtype=np.float32), requires_grad=True)
        out = t.max(axis=1).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_min(self):
        t = Tensor(np.array([3.0, -1.0, 2.0]))
        assert t.min().item() == pytest.approx(-1.0)

    def test_var(self):
        rng = np.random.default_rng(5)
        data = rng.standard_normal((4, 6)).astype(np.float32)
        t = Tensor(data)
        np.testing.assert_allclose(t.var(axis=1).data, data.var(axis=1), rtol=1e-5)

    def test_reshape_transpose_grad(self):
        check_gradient(lambda t: (t.reshape(6, 2).transpose() * 2.0).sum(), (3, 4))

    def test_swapaxes(self):
        t = Tensor(np.arange(24, dtype=np.float32).reshape(2, 3, 4))
        assert t.swapaxes(1, 2).shape == (2, 4, 3)

    def test_getitem_grad(self):
        t = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4), requires_grad=True)
        out = t[1:, :2].sum()
        out.backward()
        expected = np.zeros((3, 4))
        expected[1:, :2] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_expand_squeeze(self):
        t = Tensor(np.ones((3, 4)), requires_grad=True)
        out = t.expand_dims(1).squeeze(1).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, np.ones((3, 4)))


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self):
        t = Tensor(np.random.default_rng(0).standard_normal((5, 7)).astype(np.float32))
        np.testing.assert_allclose(t.softmax(axis=-1).data.sum(axis=-1), np.ones(5), rtol=1e-5)

    def test_softmax_grad(self):
        check_gradient(lambda t: (t.softmax(axis=-1) ** 2).sum(), (3, 5))

    def test_log_softmax_grad(self):
        check_gradient(lambda t: (t.log_softmax(axis=-1) * 0.3).sum(), (4, 6))

    def test_log_softmax_matches_log_of_softmax(self):
        t = Tensor(np.random.default_rng(2).standard_normal((3, 9)).astype(np.float32))
        np.testing.assert_allclose(
            t.log_softmax(axis=-1).data, np.log(t.softmax(axis=-1).data + 1e-12), atol=1e-5
        )

    def test_softmax_stability_with_large_values(self):
        t = Tensor(np.array([[1000.0, 1000.0, -1000.0]], dtype=np.float32))
        out = t.softmax(axis=-1).data
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out[0, :2], [0.5, 0.5], atol=1e-5)


class TestCombinators:
    def test_concatenate_grad(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 2)), requires_grad=True)
        out = concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, 2 * np.ones((2, 2)))

    def test_stack_grad(self):
        parts = [Tensor(np.full((3,), float(i)), requires_grad=True) for i in range(4)]
        out = stack(parts, axis=0)
        assert out.shape == (4, 3)
        out.sum().backward()
        for part in parts:
            np.testing.assert_allclose(part.grad, np.ones(3))

    def test_where(self):
        cond = np.array([True, False, True])
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([10.0, 20.0, 30.0]), requires_grad=True)
        out = where(cond, a, b)
        np.testing.assert_allclose(out.data, [1.0, 20.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])

    def test_masked_fill(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        mask = np.array([[True, False], [False, True]])
        out = masked_fill(t, mask, -99.0)
        np.testing.assert_allclose(out.data, [[-99.0, 1.0], [1.0, -99.0]])
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_embedding_lookup_accumulates_repeats(self):
        weight = Tensor(np.eye(4, dtype=np.float32), requires_grad=True)
        indices = np.array([1, 1, 3])
        out = embedding_lookup(weight, indices)
        out.sum().backward()
        np.testing.assert_allclose(weight.grad[1], [2.0, 2.0, 2.0, 2.0])
        np.testing.assert_allclose(weight.grad[3], [1.0, 1.0, 1.0, 1.0])
        np.testing.assert_allclose(weight.grad[0], np.zeros(4))


class TestGraphMechanics:
    def test_grad_accumulates_for_shared_tensor(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        out = (t * 3.0) + (t * 4.0)
        out.backward()
        np.testing.assert_allclose(t.grad, [7.0])

    def test_no_grad_context(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = t * 2.0
        assert not out.requires_grad

    def test_detach(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_backward_on_non_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(2)).backward()

    def test_item_and_len(self):
        assert Tensor(np.array([3.5])).item() == pytest.approx(3.5)
        assert len(Tensor(np.zeros((7, 2)))) == 7

    def test_constructors(self):
        assert Tensor.zeros((2, 2)).data.sum() == 0
        assert Tensor.ones((2, 2)).data.sum() == 4
        assert Tensor.randn((3, 3), rng=np.random.default_rng(0)).shape == (3, 3)


class TestUnbroadcast:
    @given(
        rows=st.integers(min_value=1, max_value=4),
        cols=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_unbroadcast_restores_shape(self, rows, cols):
        grad = np.ones((rows, cols))
        assert unbroadcast(grad, (1, cols)).shape == (1, cols)
        assert unbroadcast(grad, (cols,)).shape == (cols,)
        assert unbroadcast(grad, (rows, cols)).shape == (rows, cols)

    def test_unbroadcast_sums_expanded_axes(self):
        grad = np.ones((5, 3))
        np.testing.assert_allclose(unbroadcast(grad, (3,)), 5 * np.ones(3))


@settings(max_examples=20, deadline=None)
@given(
    data=st.lists(
        st.floats(min_value=-3.0, max_value=3.0, allow_nan=False), min_size=2, max_size=12
    )
)
def test_property_softmax_is_distribution(data):
    t = Tensor(np.array(data, dtype=np.float32))
    probs = t.softmax(axis=-1).data
    assert probs.min() >= 0
    assert probs.sum() == pytest.approx(1.0, abs=1e-4)


@settings(max_examples=20, deadline=None)
@given(
    shape=st.tuples(
        st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4)
    )
)
def test_property_sum_grad_is_ones(shape):
    t = Tensor(np.random.default_rng(0).standard_normal(shape).astype(np.float32), requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones(shape))
