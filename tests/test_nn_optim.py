"""Tests for losses, optimizers, schedulers, batching and checkpointing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    SGD,
    Adam,
    AdamW,
    BatchIterator,
    ConstantSchedule,
    Linear,
    Module,
    Parameter,
    StepDecaySchedule,
    Tensor,
    WarmupCosineSchedule,
    binary_cross_entropy_with_logits,
    clip_grad_norm,
    cosine_similarity_matrix,
    cross_entropy,
    info_nce_loss,
    load_checkpoint,
    mae_loss,
    mse_loss,
    nt_xent_loss,
    pad_sequences,
    save_checkpoint,
)
from repro.utils.seeding import get_rng


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]], dtype=np.float32))
        loss = cross_entropy(logits, np.array([0, 1])).item()
        expected = -np.log(np.exp(2) / (np.exp(2) + 1))
        assert loss == pytest.approx(expected, rel=1e-4)

    def test_cross_entropy_ignore_index(self):
        logits = Tensor(np.array([[5.0, 0.0], [0.0, 5.0], [1.0, 1.0]], dtype=np.float32))
        full = cross_entropy(logits, np.array([0, 1, -100]), ignore_index=-100).item()
        partial = cross_entropy(
            Tensor(logits.data[:2]), np.array([0, 1])
        ).item()
        assert full == pytest.approx(partial, rel=1e-5)

    def test_cross_entropy_all_ignored_is_zero(self):
        logits = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        loss = cross_entropy(logits, np.array([-100, -100]), ignore_index=-100)
        assert loss.item() == pytest.approx(0.0)
        loss.backward()  # must not blow up

    def test_cross_entropy_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3, 4), dtype=np.float32)), np.zeros(2))

    def test_mse_and_mae(self):
        preds = Tensor(np.array([1.0, 2.0, 3.0], dtype=np.float32))
        targets = np.array([2.0, 2.0, 5.0])
        assert mse_loss(preds, targets).item() == pytest.approx((1 + 0 + 4) / 3)
        assert mae_loss(preds, targets).item() == pytest.approx((1 + 0 + 2) / 3)

    def test_bce_with_logits(self):
        logits = Tensor(np.array([100.0, -100.0], dtype=np.float32))
        loss = binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0])).item()
        assert loss == pytest.approx(0.0, abs=1e-4)

    def test_cosine_similarity_matrix(self):
        a = Tensor(np.array([[1.0, 0.0], [0.0, 2.0]], dtype=np.float32))
        sim = cosine_similarity_matrix(a, a).data
        np.testing.assert_allclose(np.diag(sim), np.ones(2), atol=1e-5)
        assert sim[0, 1] == pytest.approx(0.0, abs=1e-5)

    def test_nt_xent_prefers_aligned_pairs(self):
        rng = np.random.default_rng(0)
        anchor = rng.standard_normal((8, 16)).astype(np.float32)
        aligned = nt_xent_loss(Tensor(anchor), Tensor(anchor + 0.01)).item()
        shuffled = nt_xent_loss(Tensor(anchor), Tensor(anchor[::-1].copy())).item()
        assert aligned < shuffled

    def test_nt_xent_temperature_effect(self):
        rng = np.random.default_rng(1)
        anchor = Tensor(rng.standard_normal((6, 8)).astype(np.float32))
        positive = Tensor(rng.standard_normal((6, 8)).astype(np.float32))
        sharp = nt_xent_loss(anchor, positive, temperature=0.05).item()
        smooth = nt_xent_loss(anchor, positive, temperature=5.0).item()
        assert sharp != pytest.approx(smooth)

    def test_nt_xent_needs_two_samples(self):
        with pytest.raises(ValueError):
            nt_xent_loss(Tensor(np.ones((1, 4))), Tensor(np.ones((1, 4))))

    def test_nt_xent_gradient_flows(self):
        anchor = Tensor(np.random.default_rng(0).standard_normal((4, 8)).astype(np.float32), requires_grad=True)
        positive = Tensor(np.random.default_rng(1).standard_normal((4, 8)).astype(np.float32), requires_grad=True)
        nt_xent_loss(anchor, positive).backward()
        assert anchor.grad is not None and positive.grad is not None

    def test_info_nce(self):
        keys = Tensor(np.eye(4, dtype=np.float32))
        query = Tensor(np.eye(4, dtype=np.float32) * 5)
        loss = info_nce_loss(query, keys, np.arange(4)).item()
        mismatched = info_nce_loss(query, keys, np.array([1, 2, 3, 0])).item()
        assert loss < mismatched


class _Quadratic(Module):
    """f(w) = ||w - target||^2, minimised at w == target."""

    def __init__(self, target: np.ndarray):
        super().__init__()
        self.weight = Parameter(np.zeros_like(target))
        self.target = target

    def loss(self) -> Tensor:
        diff = self.weight - Tensor(self.target)
        return (diff * diff).sum()


class TestOptimizers:
    @pytest.mark.parametrize("optimizer_cls,kwargs", [
        (SGD, {"lr": 0.1}),
        (SGD, {"lr": 0.05, "momentum": 0.9}),
        (Adam, {"lr": 0.2}),
        (AdamW, {"lr": 0.2, "weight_decay": 0.0}),
    ])
    def test_converges_on_quadratic(self, optimizer_cls, kwargs):
        target = np.array([1.0, -2.0, 3.0], dtype=np.float32)
        model = _Quadratic(target)
        optimizer = optimizer_cls(model.parameters(), **kwargs)
        for _ in range(200):
            optimizer.zero_grad()
            loss = model.loss()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(model.weight.data, target, atol=0.05)

    def test_adamw_weight_decay_shrinks_weights(self):
        param = Parameter(np.ones(4, dtype=np.float32) * 10)
        optimizer = AdamW([param], lr=0.1, weight_decay=0.5)
        param.grad = np.zeros(4, dtype=np.float32)
        optimizer.step()
        assert (param.data < 10).all()

    def test_empty_parameters_raise(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_clip_grad_norm(self):
        param = Parameter(np.zeros(3, dtype=np.float32))
        param.grad = np.array([3.0, 4.0, 0.0], dtype=np.float32)
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-5)

    def test_step_skips_params_without_grad(self):
        param = Parameter(np.ones(2, dtype=np.float32))
        optimizer = SGD([param], lr=0.5)
        optimizer.step()  # no grad accumulated yet
        np.testing.assert_allclose(param.data, np.ones(2))


class TestSchedulers:
    def _optimizer(self):
        return SGD([Parameter(np.zeros(1, dtype=np.float32))], lr=1.0)

    def test_constant(self):
        schedule = ConstantSchedule(self._optimizer())
        assert [schedule.step() for _ in range(3)] == [1.0, 1.0, 1.0]

    def test_step_decay(self):
        schedule = StepDecaySchedule(self._optimizer(), step_size=2, gamma=0.1)
        lrs = [schedule.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 1.0, 0.1, 0.1])

    def test_warmup_cosine_shape(self):
        schedule = WarmupCosineSchedule(self._optimizer(), warmup_steps=5, total_steps=20)
        lrs = [schedule.step() for _ in range(25)]
        assert lrs[4] == pytest.approx(1.0)
        assert all(lrs[i] <= lrs[i + 1] + 1e-9 for i in range(4))      # warm-up rises
        assert all(lrs[i] >= lrs[i + 1] - 1e-9 for i in range(5, 24))  # cosine decays
        assert lrs[-1] == pytest.approx(0.0, abs=1e-6)                 # clamped past total_steps

    def test_warmup_cosine_validation(self):
        with pytest.raises(ValueError):
            WarmupCosineSchedule(self._optimizer(), warmup_steps=10, total_steps=5)


class TestBatchingAndPadding:
    def test_pad_sequences_basic(self):
        padded, lengths, mask = pad_sequences([[1, 2, 3], [4]], pad_value=0)
        np.testing.assert_array_equal(padded, [[1, 2, 3], [4, 0, 0]])
        np.testing.assert_array_equal(lengths, [3, 1])
        np.testing.assert_array_equal(mask, [[False, False, False], [False, True, True]])

    def test_pad_sequences_truncates(self):
        padded, lengths, _ = pad_sequences([[1, 2, 3, 4, 5]], max_len=3)
        np.testing.assert_array_equal(padded, [[1, 2, 3]])
        assert lengths[0] == 3

    def test_batch_iterator_covers_all(self):
        iterator = BatchIterator(10, batch_size=3, shuffle=True, rng=get_rng(0))
        seen = np.concatenate(list(iterator))
        assert sorted(seen.tolist()) == list(range(10))
        assert len(iterator) == 4

    def test_batch_iterator_drop_last(self):
        iterator = BatchIterator(10, batch_size=3, shuffle=False, drop_last=True)
        batches = list(iterator)
        assert len(batches) == 3 and all(len(b) == 3 for b in batches)

    def test_batch_iterator_invalid(self):
        with pytest.raises(ValueError):
            BatchIterator(10, batch_size=0)

    @settings(max_examples=20, deadline=None)
    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=8)
    )
    def test_property_padding_mask_matches_lengths(self, lengths):
        sequences = [list(range(n)) for n in lengths]
        _, out_lengths, mask = pad_sequences(sequences)
        np.testing.assert_array_equal(out_lengths, lengths)
        np.testing.assert_array_equal((~mask).sum(axis=1), lengths)


class TestCheckpointing:
    def test_save_load_roundtrip(self, tmp_path):
        model_a = Linear(4, 3, rng=get_rng(0))
        model_b = Linear(4, 3, rng=get_rng(99))
        path = save_checkpoint(model_a, tmp_path / "model.ckpt", metadata={"epoch": 7})
        meta = load_checkpoint(model_b, path)
        assert meta == {"epoch": 7}
        np.testing.assert_allclose(model_a.weight.data, model_b.weight.data)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(Linear(2, 2), tmp_path / "nope.ckpt")
