"""Run the `IndexBackend` conformance suite against every registered backend.

``backend_name`` is parametrized at collection time over
:func:`repro.api.available_backends`, so the five built-ins *and* any
third-party backend registered before collection (e.g. by a plugin's
conftest) are all held to the same contract.  The suite itself lives in
``tests/backend_conformance.py`` — the executable form of the registry
contract documented in ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

import numpy as np

from backend_conformance import IndexBackendConformanceSuite, make_backend
from repro.api import available_backends, register_backend, unregister_backend


def pytest_generate_tests(metafunc):
    if "backend_name" in metafunc.fixturenames:
        metafunc.parametrize("backend_name", available_backends())


class TestRegisteredBackends(IndexBackendConformanceSuite):
    """All currently registered backends, one parametrized run each."""


def test_builtins_are_all_covered():
    assert {"bruteforce", "chunked", "sharded", "ivf", "ivfpq"} <= set(available_backends())


def test_third_party_registration_is_picked_up_by_the_kit():
    """A drop-in backend registered under a new name goes through the same
    factory path the parametrized suite uses (full-suite coverage happens
    automatically once the registration exists at collection time)."""

    @register_backend("conformance-demo")
    def factory(**kwargs):
        from repro.api import create_backend

        return create_backend("sharded", **kwargs)

    try:
        backend = make_backend("conformance-demo")
        backend.add(np.ones((3, 2), dtype=np.float32))
        assert len(backend) == 3
    finally:
        unregister_backend("conformance-demo")
