"""Regression tests for the deprecated pre-facade entry points.

The old public path — constructing ``EmbeddingStore`` / ``SimilarityIndex``
/ ``ShardedIndex`` / ``IngestService`` by hand — must keep working (same
classes, identical results) while steering users to ``repro.api.Engine``
with a ``DeprecationWarning`` on package-level access.  Library-internal
submodule imports stay warning-free.

Also covers the lazy top-level package: ``import repro`` is cheap and
resolves sub-packages plus the facade entry points on attribute access
(PEP 562).
"""

from __future__ import annotations

import subprocess
import sys
import warnings
from dataclasses import dataclass

import numpy as np
import pytest

import repro
from repro.api import Engine, EngineConfig, QueryRequest


@dataclass
class FakeTrajectory:
    length: int
    trajectory_id: int

    def __len__(self) -> int:
        return self.length


def linear_encode(batch: list[FakeTrajectory]) -> np.ndarray:
    return np.array(
        [[t.length, t.trajectory_id % 7, t.trajectory_id % 3] for t in batch],
        dtype=np.float32,
    )


CORPUS = [FakeTrajectory(length=3 + (i % 9), trajectory_id=200 + i) for i in range(40)]


class TestDeprecatedEntryPoints:
    @pytest.mark.parametrize(
        "package, name, submodule",
        [
            ("repro.serving", "EmbeddingStore", "repro.serving.store"),
            ("repro.serving", "SimilarityIndex", "repro.serving.index"),
            ("repro.streaming", "ShardedIndex", "repro.streaming.shards"),
            ("repro.streaming", "IngestService", "repro.streaming.service"),
        ],
    )
    def test_package_access_warns_and_returns_the_same_class(self, package, name, submodule):
        import importlib

        pkg = importlib.import_module(package)
        with pytest.warns(DeprecationWarning, match="repro.api.Engine"):
            deprecated = getattr(pkg, name)
        # The shim hands back the real class — old isinstance checks,
        # pickles and subclasses keep working.
        assert deprecated is getattr(importlib.import_module(submodule), name)

    def test_package_level_warning_fires_once_per_call_site(self):
        """The default warning filter dedupes by call site: a loop over the
        old path produces a single DeprecationWarning, not one per access."""
        code = (
            "import warnings, repro.serving\n"
            "with warnings.catch_warnings(record=True) as caught:\n"
            "    warnings.simplefilter('default')\n"
            "    for _ in range(5):\n"
            "        repro.serving.EmbeddingStore\n"
            "print(sum(issubclass(w.category, DeprecationWarning) for w in caught))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, check=True
        )
        assert result.stdout.strip() == "1"

    def test_internal_submodule_imports_stay_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.serving.index import SimilarityIndex  # noqa: F401
            from repro.serving.store import EmbeddingStore  # noqa: F401
            from repro.streaming.service import IngestService  # noqa: F401
            from repro.streaming.shards import ShardedIndex  # noqa: F401
            import repro.eval  # the rewired harness must not touch shims
            import repro.experiments  # noqa: F401

    def test_old_manual_wiring_matches_the_facade(self, rng):
        """The deprecated hand-wired path (store → index → topk) must keep
        producing results identical to the facade over the same corpus."""
        with pytest.warns(DeprecationWarning):
            from repro.serving import EmbeddingStore  # the old entry point

        store = EmbeddingStore.build(linear_encode, CORPUS)
        old_result = store.index(database_chunk_size=8).topk(store.vectors[:5], k=7)

        engine = Engine(linear_encode, EngineConfig(backend="chunked", database_chunk_size=8))
        engine.ingest(CORPUS)
        new_result = engine.query(QueryRequest(queries=store.vectors[:5], k=7))

        np.testing.assert_array_equal(old_result.indices, new_result.ids)
        assert (old_result.distances == new_result.distances).all()

    def test_old_ingest_service_matches_the_facade(self):
        with pytest.warns(DeprecationWarning):
            from repro.streaming import IngestService

        service = IngestService(linear_encode, shard_capacity=16)
        service.ingest(CORPUS)
        queries = linear_encode(CORPUS[:4])
        old = service.top_k(queries, k=5)

        engine = Engine(linear_encode, EngineConfig(backend="sharded", shard_capacity=16))
        engine.ingest(CORPUS)
        new = engine.query(QueryRequest(queries=queries, k=5))

        np.testing.assert_array_equal(old.indices, new.ids)
        assert (old.distances == new.distances).all()

    def test_unknown_attribute_still_raises(self):
        import repro.serving
        import repro.streaming

        with pytest.raises(AttributeError):
            repro.serving.NoSuchThing
        with pytest.raises(AttributeError):
            repro.streaming.NoSuchThing


class TestLazyTopLevelPackage:
    def test_subpackages_resolve_lazily(self):
        assert repro.api.Engine is Engine
        assert repro.core.STARTModel is not None
        assert repro.nn.no_grad is not None

    def test_facade_entry_points_reexported(self):
        assert repro.Engine is Engine
        assert repro.EngineConfig is EngineConfig
        assert "Engine" in repro.__all__
        assert "api" in repro.__all__

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute 'bogus'"):
            repro.bogus

    def test_dir_lists_lazy_names(self):
        names = dir(repro)
        assert "api" in names and "Engine" in names and "__version__" in names

    def test_import_repro_is_lazy_and_light(self):
        """`import repro` must not drag in the heavy model stack (PEP 562)."""
        code = (
            "import sys, repro\n"
            "heavy = [m for m in sys.modules if m.startswith(('repro.core', 'repro.nn', 'repro.api'))]\n"
            "print(len(heavy))\n"
            "repro.api.Engine\n"
            "print('repro.api' in sys.modules and 'repro.core' in sys.modules)\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, check=True
        )
        first, second = result.stdout.strip().splitlines()
        assert first == "0"
        assert second == "True"
