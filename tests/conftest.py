"""Shared pytest fixtures: deterministic seeding and small reusable datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.seeding import seed_everything


@pytest.fixture(autouse=True)
def _seed_all():
    """Make every test deterministic regardless of execution order."""
    seed_everything(1234)
    yield


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
